"""Protocol regime maps: which strategy wins where, at its optimal period.

The paper's headline result is a *comparison*: NoFT, PurePeriodicCkpt,
BiPeriodicCkpt and ABFT&PeriodicCkpt each dominate a different region of the
platform-parameter space, provided every strategy runs at its own optimal
period (Equation 11).  A :class:`RegimeMap` materialises that comparison as
data: a grid over

* **node count** ``n`` (the platform MTBF is the per-node MTBF divided by
  ``n``, the paper's weak-scaling law),
* **per-node MTBF** ``mu_ind``,
* **checkpoint cost** ``C`` (with ``R = C`` unless overridden) *or* a set of
  named checkpoint-storage stacks (``storage_stacks``), in which case every
  cell lowers its stack into effective ``(C, R)`` for that cell's data
  volume, node count and platform MTBF, and
* **ABFT overhead** ``phi``

where every cell optimizes every registered protocol numerically
(:func:`~repro.optimize.period.optimize_period`), records the per-protocol
optimal periods and minimal wastes, optionally validates the ranking with
Monte-Carlo campaigns (vectorized engine sharded over
:class:`~repro.campaign.executor.ShardedVectorizedExecutor` where supported,
event simulators fanned over
:class:`~repro.campaign.executor.ParallelMonteCarloExecutor` otherwise),
and names the winning protocol.

Cells are cached one JSON file each
(:class:`~repro.campaign.cache.SweepCache`), so an interrupted map resumes,
and the serialized map (:meth:`RegimeMap.to_json`) is deterministic: same
spec, same seed, same winners -- the CI smoke job asserts exactly that
across a resumed re-run.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.application.workload import ApplicationWorkload
from repro.campaign.cache import SweepCache
from repro.campaign.executor import (
    ParallelMonteCarloExecutor,
    ShardedVectorizedExecutor,
)
from repro.checkpointing.stack import StorageStack
from repro.core.parameters import ResilienceParameters
from repro.core.registry import build_storage, resolve_protocol
from repro.optimize.period import optimize_period
from repro.optimize.refine import simulate_at_periods
from repro.simulation.vectorized import ENGINE_BACKENDS
from repro.utils.tables import Table
from repro.utils.units import MINUTE, YEAR

__all__ = [
    "DEFAULT_REGIME_PROTOCOLS",
    "RegimeMapSpec",
    "RegimeCell",
    "RegimeMap",
    "compute_regime_map",
]

#: Bump when the serialized map layout changes incompatibly.
REGIME_SCHEMA_VERSION = 1

#: The paper's comparison set: the NoFT baseline plus the three strategies.
DEFAULT_REGIME_PROTOCOLS: Tuple[str, ...] = (
    "NoFT",
    "PurePeriodicCkpt",
    "BiPeriodicCkpt",
    "ABFT&PeriodicCkpt",
)

#: Compact winner labels for the ASCII crossover tables.
_SHORT_NAMES = {
    "NoFT": "NoFT",
    "PurePeriodicCkpt": "Pure",
    "BiPeriodicCkpt": "BiCkpt",
    "ABFT&PeriodicCkpt": "ABFT&PC",
}

#: Above this analytical waste a cell is not worth simulating: the protocol
#: makes essentially no progress and every trial would just walk failures
#: until the truncation cap.  The analytical value is recorded instead.
SIMULATION_WASTE_CUTOFF = 0.999


def _short(name: str) -> str:
    return _SHORT_NAMES.get(name, name[:12])


def _freeze_storage_stacks(stacks: Any) -> Tuple[Tuple[str, Any], ...]:
    """Normalise the storage axis into hashable ``(label, frozen-tree)`` pairs.

    Accepts a mapping ``label -> tree`` or a sequence of ``(label, tree)``
    pairs (the serialized form); every tree is probed through
    :func:`~repro.core.registry.build_storage` so a misspelt kind or bad
    parameter fails at spec construction, not mid-map.
    """
    from repro.scenario.spec import _freeze, _thaw

    items = stacks.items() if isinstance(stacks, Mapping) else stacks
    frozen: list[Tuple[str, Any]] = []
    seen: set[str] = set()
    for item in items:
        label, tree = item
        label = str(label)
        if label in seen:
            raise ValueError(f"duplicate storage stack label {label!r}")
        seen.add(label)
        path = f"storage_stacks[{label}]"
        normalised = _thaw(_freeze(tree, path))
        build_storage(normalised, path=path)
        frozen.append((label, _freeze(normalised, path)))
    return tuple(frozen)


@dataclass(frozen=True)
class RegimeMapSpec:
    """Declarative description of one regime map.

    Attributes
    ----------
    node_counts / node_mtbf_values / checkpoint_costs / abft_overheads:
        The four grid axes: platform sizes, per-node MTBFs (seconds),
        full-checkpoint costs ``C`` (seconds) and ABFT slowdowns ``phi``.
        The platform MTBF of a cell is ``node_mtbf / nodes``.
    protocols:
        Registered protocol names to compare (aliases accepted); defaults to
        the NoFT baseline plus the paper's three strategies.  Every complete
        registry entry is optimizable, so third-party protocols join the
        comparison by simply being registered.
    application_time / alpha / library_fraction:
        The protected workload: fault-free duration ``T0``, LIBRARY time
        fraction and memory fraction ``rho``.
    downtime / recovery / abft_reconstruction:
        Remaining platform scalars; ``recovery=None`` uses ``R = C``.
    storage_stacks / memory_per_node:
        Optional storage axis.  ``storage_stacks`` names checkpoint-storage
        stacks (label to ``{"kind", "params"}`` tree, as in scenario JSON);
        when non-empty it *replaces* the ``checkpoint_costs`` axis: the
        third cell coordinate becomes the stack label, and each cell lowers
        its stack into effective ``(C, R)`` for ``memory_per_node * nodes``
        bytes across ``nodes`` nodes at that cell's platform MTBF (weak
        scaling: the protected data grows with the machine).  ``recovery``
        is ignored in storage mode -- ``R`` comes from the stack.
    simulate / simulation_runs / seed / backend:
        Validate each cell's ranking with Monte-Carlo campaigns at the
        numerically optimal periods.  ``backend`` follows the engine
        convention (``"auto"`` default).
    max_slowdown:
        Truncation cap of simulated trials.  Deliberately lower than the
        simulators' default: regime maps visit hopeless corners (NoFT at
        huge scale) where trials only end by truncation.
    """

    node_counts: Tuple[int, ...]
    node_mtbf_values: Tuple[float, ...]
    checkpoint_costs: Tuple[float, ...] = (10 * MINUTE,)
    abft_overheads: Tuple[float, ...] = (1.03,)
    protocols: Tuple[str, ...] = DEFAULT_REGIME_PROTOCOLS
    application_time: float = 60.0 * 60.0 * 24.0
    alpha: float = 0.8
    library_fraction: float = 0.8
    downtime: float = 60.0
    recovery: Optional[float] = None
    abft_reconstruction: float = 2.0
    storage_stacks: Tuple[Tuple[str, Any], ...] = ()
    memory_per_node: float = 0.0
    simulate: bool = False
    simulation_runs: int = 100
    seed: int = 2014
    backend: str = "auto"
    max_slowdown: float = 100.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "node_counts", tuple(int(n) for n in self.node_counts)
        )
        object.__setattr__(
            self, "node_mtbf_values", tuple(float(m) for m in self.node_mtbf_values)
        )
        object.__setattr__(
            self, "checkpoint_costs", tuple(float(c) for c in self.checkpoint_costs)
        )
        object.__setattr__(
            self, "abft_overheads", tuple(float(p) for p in self.abft_overheads)
        )
        for axis in (
            "node_counts",
            "node_mtbf_values",
            "checkpoint_costs",
            "abft_overheads",
        ):
            if not getattr(self, axis):
                raise ValueError(f"{axis} must be non-empty")
        if any(n <= 0 for n in self.node_counts):
            raise ValueError("node_counts must be positive")
        if any(m <= 0 for m in self.node_mtbf_values):
            raise ValueError("node_mtbf_values must be positive")
        if any(c < 0 for c in self.checkpoint_costs):
            raise ValueError("checkpoint_costs must be non-negative")
        if any(p < 1.0 for p in self.abft_overheads):
            raise ValueError("abft_overheads (phi) must be >= 1")
        object.__setattr__(
            self, "storage_stacks", _freeze_storage_stacks(self.storage_stacks)
        )
        object.__setattr__(self, "memory_per_node", float(self.memory_per_node))
        if self.memory_per_node < 0:
            raise ValueError("memory_per_node must be non-negative")
        if self.storage_stacks and self.checkpoint_costs != (float(10 * MINUTE),):
            raise ValueError(
                "checkpoint_costs and storage_stacks are mutually exclusive: "
                "the storage axis replaces the checkpoint-cost axis"
            )
        # Canonicalize protocol spellings up front: unknown names raise the
        # registry's nearest-match error before any cell is evaluated.
        object.__setattr__(
            self,
            "protocols",
            tuple(resolve_protocol(name).name for name in self.protocols),
        )
        if self.application_time <= 0:
            raise ValueError("application_time must be > 0")
        if self.backend not in ENGINE_BACKENDS:
            raise ValueError(
                f"unknown engine backend {self.backend!r}; "
                f"expected one of {ENGINE_BACKENDS}"
            )
        if self.simulate and self.simulation_runs <= 0:
            raise ValueError("simulation_runs must be positive")
        if self.max_slowdown <= 1.0:
            raise ValueError("max_slowdown must be > 1")

    # ------------------------------------------------------------------ #
    @property
    def storage_mode(self) -> bool:
        """Whether the third axis is storage stacks instead of scalar ``C``."""
        return bool(self.storage_stacks)

    @property
    def storage_labels(self) -> Tuple[str, ...]:
        """The storage-axis labels, in axis order."""
        return tuple(label for label, _ in self.storage_stacks)

    def storage_tree(self, label: str) -> Dict[str, Any]:
        """The ``{"kind", "params"}`` tree of one named stack (thawed)."""
        from repro.scenario.spec import _thaw

        for name, tree in self.storage_stacks:
            if name == label:
                return _thaw(tree)
        raise KeyError(
            f"unknown storage stack {label!r}; "
            f"expected one of {list(self.storage_labels)}"
        )

    def storage_stack_at(self, label: str, nodes: int) -> StorageStack:
        """The concrete stack of one cell: label bound to the cell's scale."""
        return StorageStack(
            build_storage(self.storage_tree(label)),
            data_bytes=self.memory_per_node * nodes,
            node_count=int(nodes),
        )

    def coordinates(self) -> Iterator[Tuple[int, float, Any, float]]:
        """Cell coordinates ``(nodes, node_mtbf, checkpoint, phi)``, nodes-major.

        In storage mode the third coordinate is the storage label (a string)
        rather than a scalar checkpoint cost.
        """
        third_axis: Tuple[Any, ...] = (
            self.storage_labels if self.storage_mode else self.checkpoint_costs
        )
        for nodes in self.node_counts:
            for node_mtbf in self.node_mtbf_values:
                for checkpoint in third_axis:
                    for phi in self.abft_overheads:
                        yield nodes, node_mtbf, checkpoint, phi

    @property
    def cell_count(self) -> int:
        """Number of grid cells."""
        third = (
            len(self.storage_stacks)
            if self.storage_mode
            else len(self.checkpoint_costs)
        )
        return (
            len(self.node_counts)
            * len(self.node_mtbf_values)
            * third
            * len(self.abft_overheads)
        )

    def parameters_at(
        self, nodes: int, node_mtbf: float, checkpoint: Any, phi: float
    ) -> ResilienceParameters:
        """The parameter bundle of one cell.

        A string ``checkpoint`` is a storage label: the stack is lowered
        into effective ``(C, R)`` at this cell's data volume, node count and
        platform MTBF.
        """
        if isinstance(checkpoint, str):
            return ResilienceParameters.from_storage(
                platform_mtbf=node_mtbf / nodes,
                storage=self.storage_stack_at(checkpoint, nodes),
                downtime=self.downtime,
                library_fraction=self.library_fraction,
                abft_overhead=phi,
                abft_reconstruction=self.abft_reconstruction,
            )
        return ResilienceParameters.from_scalars(
            platform_mtbf=node_mtbf / nodes,
            checkpoint=checkpoint,
            recovery=self.recovery,
            downtime=self.downtime,
            library_fraction=self.library_fraction,
            abft_overhead=phi,
            abft_reconstruction=self.abft_reconstruction,
        )

    def workload(self) -> ApplicationWorkload:
        """The (shared) protected workload."""
        return ApplicationWorkload.single_epoch(
            self.application_time, self.alpha, library_fraction=self.library_fraction
        )

    def replace(self, **changes: Any) -> "RegimeMapSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def cell_key(
        self, nodes: int, node_mtbf: float, checkpoint: Any, phi: float
    ) -> Dict[str, Any]:
        """Cache key of one cell (everything its value depends on)."""
        key: Dict[str, Any] = {
            "optimize": "regime-cell",
            "schema": REGIME_SCHEMA_VERSION,
            "nodes": int(nodes),
            "node_mtbf": float(node_mtbf),
            "abft_overhead": float(phi),
            # Order matters (it is the winner tie-break), so the key keeps
            # it: reordered protocol lists must not share cached cells.
            "protocols": list(self.protocols),
            "application_time": self.application_time,
            "alpha": self.alpha,
            "library_fraction": self.library_fraction,
            "downtime": self.downtime,
            "recovery": self.recovery,
            "abft_reconstruction": self.abft_reconstruction,
            "simulate": self.simulate,
        }
        if isinstance(checkpoint, str):
            # Storage cells key on the label *and* the stack's content, so
            # renaming or retuning a stack never reuses a stale cell.
            key["storage"] = checkpoint
            key["storage_tree"] = self.storage_tree(checkpoint)
            key["memory_per_node"] = float(self.memory_per_node)
        else:
            key["checkpoint"] = float(checkpoint)
        if self.simulate:
            key["simulation_runs"] = self.simulation_runs
            key["seed"] = self.seed
            key["max_slowdown"] = self.max_slowdown
        return key

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (embedded in the serialized map).

        The storage axis is emitted as a list of ``[label, tree]`` pairs
        (axis order matters for coordinates), and only when set, so legacy
        scalar maps serialize byte-identically to before.
        """
        data: Dict[str, Any] = {
            "node_counts": list(self.node_counts),
            "node_mtbf_values": list(self.node_mtbf_values),
            "checkpoint_costs": list(self.checkpoint_costs),
            "abft_overheads": list(self.abft_overheads),
            "protocols": list(self.protocols),
            "application_time": self.application_time,
            "alpha": self.alpha,
            "library_fraction": self.library_fraction,
            "downtime": self.downtime,
            "recovery": self.recovery,
            "abft_reconstruction": self.abft_reconstruction,
            "simulate": self.simulate,
            "simulation_runs": self.simulation_runs,
            "seed": self.seed,
            "backend": self.backend,
            "max_slowdown": self.max_slowdown,
        }
        if self.storage_mode:
            data["storage_stacks"] = [
                [label, self.storage_tree(label)] for label in self.storage_labels
            ]
            data["memory_per_node"] = self.memory_per_node
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegimeMapSpec":
        """Inverse of :meth:`to_dict`; maps without a storage axis load as
        scalar-checkpoint maps."""
        return cls(**{key: data[key] for key in data})


@dataclass(frozen=True)
class RegimeCell:
    """One evaluated grid cell: per-protocol optima and the winner.

    ``results`` maps each canonical protocol name to its summary dict --
    ``waste`` (model, at the numeric optimum), ``periods``, ``closed_form``,
    ``feasible`` and, on simulated maps, ``simulated_waste`` plus the
    campaign ``summary``.

    On storage-axis maps ``storage`` holds the stack label and
    ``checkpoint`` the *effective* lowered checkpoint cost of the cell (so
    downstream tables and the service keep working on scalars).
    """

    nodes: int
    node_mtbf: float
    checkpoint: float
    abft_overhead: float
    platform_mtbf: float
    results: Mapping[str, Mapping[str, Any]]
    winner: str
    margin: float
    storage: Optional[str] = None

    def waste(self, protocol: str, *, simulated: Optional[bool] = None) -> float:
        """The decisive waste of one protocol in this cell.

        ``simulated=None`` (default) returns whatever the winner was ranked
        on -- the simulated mean on validated maps, the model value
        otherwise.
        """
        entry = self.results[protocol]
        if simulated is None:
            simulated = "simulated_waste" in entry
        if simulated:
            value = entry.get("simulated_waste")
            return math.nan if value is None else float(value)
        return float(entry["waste"])

    @property
    def axis_value(self) -> Any:
        """The cell's third coordinate: storage label or checkpoint cost."""
        return self.storage if self.storage is not None else self.checkpoint

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (non-finite margins map to ``None``)."""
        data = {
            "nodes": self.nodes,
            "node_mtbf": self.node_mtbf,
            "checkpoint": self.checkpoint,
            "abft_overhead": self.abft_overhead,
            "platform_mtbf": self.platform_mtbf,
            "results": {name: dict(value) for name, value in self.results.items()},
            "winner": self.winner,
            "margin": self.margin if math.isfinite(self.margin) else None,
        }
        if self.storage is not None:
            data["storage"] = self.storage
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegimeCell":
        """Inverse of :meth:`to_dict`."""
        margin = data.get("margin")
        storage = data.get("storage")
        return cls(
            nodes=int(data["nodes"]),
            node_mtbf=float(data["node_mtbf"]),
            checkpoint=float(data["checkpoint"]),
            abft_overhead=float(data["abft_overhead"]),
            platform_mtbf=float(data["platform_mtbf"]),
            results={str(k): dict(v) for k, v in data["results"].items()},
            winner=str(data["winner"]),
            margin=math.nan if margin is None else float(margin),
            storage=None if storage is None else str(storage),
        )


@dataclass(frozen=True)
class RegimeMap:
    """A fully evaluated regime map, with cache accounting.

    ``computed_cells`` / ``cached_cells`` mirror the sweep runner's
    convention: a fully resumed map reports ``computed_cells == 0`` and
    bit-identical cells.
    """

    spec: RegimeMapSpec
    cells: Tuple[RegimeCell, ...]
    computed_cells: int = 0
    cached_cells: int = 0

    # ------------------------------------------------------------------ #
    def cell_index(self) -> Dict[Tuple[int, float, Any, float], RegimeCell]:
        """O(1) lookup table ``(nodes, node_mtbf, C-or-label, phi) -> cell``.

        The third key component matches :meth:`RegimeMapSpec.coordinates`:
        the storage label on storage-axis maps, the scalar checkpoint cost
        otherwise.  The advisor service's tier-2 surface queries corner
        cells per request; a fresh dict per call keeps the dataclass
        frozen/hashable while callers that care (the surface) build it once
        and keep it.
        """
        return {
            (cell.nodes, cell.node_mtbf, cell.axis_value, cell.abft_overhead):
            cell
            for cell in self.cells
        }

    def cell_at(
        self, nodes: int, node_mtbf: float, checkpoint: Any, phi: float
    ) -> RegimeCell:
        """The cell at one coordinate tuple (third slot: ``C`` or label)."""
        cell = self.cell_index().get((nodes, node_mtbf, checkpoint, phi))
        if cell is None:
            raise KeyError(
                f"no cell at nodes={nodes}, node_mtbf={node_mtbf}, "
                f"checkpoint={checkpoint}, phi={phi}"
            )
        return cell

    def winners(self) -> Dict[Tuple[int, float, Any, float], str]:
        """Map of cell coordinates to winning protocol."""
        return {
            (cell.nodes, cell.node_mtbf, cell.axis_value, cell.abft_overhead):
            cell.winner
            for cell in self.cells
        }

    def winner_counts(self) -> Dict[str, int]:
        """How many cells each protocol wins (zero-win protocols included)."""
        counts = {name: 0 for name in self.spec.protocols}
        for cell in self.cells:
            counts[cell.winner] = counts.get(cell.winner, 0) + 1
        return counts

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def crossover_tables(self) -> list[Table]:
        """One winners table per (checkpoint, phi) slice: nodes x node-MTBF.

        This is the paper's strategy-crossover narrative as a grid: reading
        a column top to bottom shows the winner flipping from the cheap
        strategies to the composite as the platform grows and failures
        dominate.
        """
        winners = self.winners()
        tables: list[Table] = []
        third_axis: Tuple[Any, ...] = (
            self.spec.storage_labels
            if self.spec.storage_mode
            else self.spec.checkpoint_costs
        )
        for checkpoint in third_axis:
            for phi in self.spec.abft_overheads:
                headers = ["nodes \\ node-MTBF"] + [
                    f"{mtbf / YEAR:.3g}y" for mtbf in self.spec.node_mtbf_values
                ]
                slice_label = (
                    f"storage = {checkpoint}"
                    if isinstance(checkpoint, str)
                    else f"C = {checkpoint / MINUTE:.3g} min"
                )
                table = Table(
                    headers,
                    title=f"winning protocol ({slice_label}, phi = {phi:g})",
                )
                for nodes in self.spec.node_counts:
                    row: list[Any] = [nodes]
                    for node_mtbf in self.spec.node_mtbf_values:
                        row.append(
                            _short(winners[(nodes, node_mtbf, checkpoint, phi)])
                        )
                    table.add_row(row)
                tables.append(table)
        return tables

    def to_ascii(self) -> str:
        """Every crossover table, rendered as text."""
        return "\n\n".join(table.to_text() for table in self.crossover_tables())

    def to_table(self) -> Table:
        """Long-format table: one row per cell with every protocol's waste."""
        headers = [
            "nodes",
            "node_mtbf_years",
            "platform_mtbf_minutes",
        ]
        if self.spec.storage_mode:
            headers.append("storage")
        headers.extend(
            [
                "checkpoint_minutes",
                "phi",
                "winner",
                "margin",
            ]
        )
        headers.extend(f"waste[{name}]" for name in self.spec.protocols)
        headers.extend(f"period[{name}]" for name in self.spec.protocols)
        table = Table(headers, title="Regime map: minimal waste per protocol")
        for cell in self.cells:
            row: list[Any] = [
                cell.nodes,
                cell.node_mtbf / YEAR,
                cell.platform_mtbf / MINUTE,
            ]
            if self.spec.storage_mode:
                row.append(cell.storage or "")
            row.extend(
                [
                    cell.checkpoint / MINUTE,
                    cell.abft_overhead,
                    cell.winner,
                    cell.margin,
                ]
            )
            row.extend(cell.waste(name) for name in self.spec.protocols)
            for name in self.spec.protocols:
                periods = cell.results[name].get("periods") or {}
                finite = [v for v in periods.values() if v is not None]
                row.append(min(finite) if finite else float("nan"))
            table.add_row(row)
        return table

    def write_csv(self, path: "str | Path") -> Path:
        """Write the long-format table as CSV."""
        return self.to_table().write(path)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form; deterministic for a given spec and seed."""
        return {
            "schema": REGIME_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "cells": [cell.to_dict() for cell in self.cells],
            "winner_counts": self.winner_counts(),
        }

    def to_json(self, *, indent: int = 1) -> str:
        """Serialize to deterministic JSON (sorted keys, no timestamps)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: "str | Path") -> Path:
        """Write the map to a JSON file; returns the path."""
        target = Path(path)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegimeMap":
        """Rebuild a map from its serialized form."""
        return cls(
            spec=RegimeMapSpec.from_dict(data["spec"]),
            cells=tuple(RegimeCell.from_dict(cell) for cell in data["cells"]),
        )

    @classmethod
    def load(cls, path: "str | Path") -> "RegimeMap":
        """Read a map back from a JSON file."""
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )


# ---------------------------------------------------------------------- #
# Computation
# ---------------------------------------------------------------------- #
def _evaluate_cell(
    spec: RegimeMapSpec,
    nodes: int,
    node_mtbf: float,
    checkpoint: Any,
    phi: float,
    executor: ParallelMonteCarloExecutor,
    vector_executor: Optional[ShardedVectorizedExecutor] = None,
) -> Dict[str, Any]:
    """Evaluate one cell into its cacheable plain-data form.

    ``checkpoint`` is the third coordinate: a scalar cost, or a storage
    label whose stack is lowered through ``spec.parameters_at`` (the
    recorded ``checkpoint`` is then the effective lowered cost).
    """
    parameters = spec.parameters_at(nodes, node_mtbf, checkpoint, phi)
    workload = spec.workload()
    results: Dict[str, Dict[str, Any]] = {}
    for name in spec.protocols:
        optimum = optimize_period(name, parameters, workload)
        entry = optimum.to_dict()
        del entry["protocol"]
        if spec.simulate:
            if optimum.waste >= SIMULATION_WASTE_CUTOFF:
                # Hopeless corner: every trial would only end by truncation;
                # record the analytical value instead of burning the budget.
                entry["simulated_waste"] = float(optimum.waste)
                entry["simulated"] = False
            else:
                periods = {
                    k: v for k, v in optimum.periods.items() if math.isfinite(v)
                }
                summary = simulate_at_periods(
                    name,
                    parameters,
                    workload,
                    periods,
                    runs=spec.simulation_runs,
                    seed=spec.seed,
                    backend=spec.backend,
                    executor=executor,
                    vector_executor=vector_executor,
                    max_slowdown=spec.max_slowdown,
                )
                entry["simulated_waste"] = summary.get("waste_mean")
                entry["summary"] = dict(summary)
                entry["simulated"] = True
        results[name] = entry

    def decisive(name: str) -> float:
        entry = results[name]
        value = entry.get("simulated_waste") if spec.simulate else entry["waste"]
        return math.inf if value is None else float(value)

    # Ties break towards the spec's protocol order (registration order for
    # the defaults), which keeps winners deterministic.
    winner = min(spec.protocols, key=lambda name: (decisive(name),))
    others = sorted(decisive(name) for name in spec.protocols if name != winner)
    margin = (others[0] - decisive(winner)) if others else math.nan
    value: Dict[str, Any] = {
        "nodes": int(nodes),
        "node_mtbf": float(node_mtbf),
        "checkpoint": float(parameters.full_checkpoint)
        if isinstance(checkpoint, str)
        else float(checkpoint),
        "abft_overhead": float(phi),
        "platform_mtbf": parameters.platform_mtbf,
        "results": results,
        "winner": winner,
        "margin": margin if math.isfinite(margin) else None,
    }
    if isinstance(checkpoint, str):
        value["storage"] = checkpoint
    return value


def compute_regime_map(
    spec: RegimeMapSpec,
    *,
    workers: Optional[int] = None,
    pool_backend: str = "process",
    cache_dir: Optional["str | Path"] = None,
    resume: bool = True,
) -> RegimeMap:
    """Evaluate (or resume) a regime map.

    Parameters
    ----------
    spec:
        The map description.
    workers / pool_backend:
        Worker-pool settings for the campaigns of simulated maps:
        event-backend cells fan their trials over a
        :class:`ParallelMonteCarloExecutor`, vectorized cells shard their
        trial range over a :class:`ShardedVectorizedExecutor` (process
        pools only; analytical cells are CPU-light and run inline).
    cache_dir / resume:
        Per-cell cache directory and whether to consult existing entries;
        semantics identical to :class:`~repro.campaign.sweep_runner.SweepRunner`.
    """
    cache = SweepCache(cache_dir) if cache_dir is not None else None
    executor = ParallelMonteCarloExecutor(
        workers=1 if workers is None else workers, backend=pool_backend
    )
    vector_executor = ShardedVectorizedExecutor(
        workers=1 if workers is None else workers,
        backend="process" if pool_backend == "process" else "serial",
    )
    cells: list[RegimeCell] = []
    computed = 0
    cached_count = 0
    for coords in spec.coordinates():
        key = spec.cell_key(*coords)
        value = cache.load(key) if (cache is not None and resume) else None
        if value is None:
            value = _evaluate_cell(spec, *coords, executor, vector_executor)
            if cache is not None:
                cache.store(key, value)
            computed += 1
        else:
            cached_count += 1
        margin = value.get("margin")
        storage = value.get("storage")
        cells.append(
            RegimeCell(
                nodes=int(value["nodes"]),
                node_mtbf=float(value["node_mtbf"]),
                checkpoint=float(value["checkpoint"]),
                abft_overhead=float(value["abft_overhead"]),
                platform_mtbf=float(value["platform_mtbf"]),
                results={
                    str(k): dict(v) for k, v in value["results"].items()
                },
                winner=str(value["winner"]),
                margin=math.nan if margin is None else float(margin),
                storage=None if storage is None else str(storage),
            )
        )
    return RegimeMap(
        spec=spec,
        cells=tuple(cells),
        computed_cells=computed,
        cached_cells=cached_count,
    )
