"""Strategy advisor: numeric period optimization and protocol regime maps.

The paper's comparison only makes sense when every composite strategy runs
at its *own* optimal period (Equation 11); this package is the layer that
finds those periods and runs the comparison:

* :mod:`repro.optimize.period` -- derivative-free scalar optimization
  (scanning bracket + Brent refinement, NumPy-only) of any registered
  protocol's tunable periods, validated against the Equation 11 closed
  forms where they exist;
* :mod:`repro.optimize.refine` -- simulation-backed refinement of the
  analytical optimum through the Monte-Carlo engine and the campaign
  executor, resumable via the sweep cache;
* :mod:`repro.optimize.regime` -- regime maps over the
  (nodes x per-node MTBF x checkpoint cost x ABFT overhead) grid naming the
  winning protocol per cell, serialized as deterministic JSON plus the
  paper-style ASCII crossover tables.

Quick start::

    from repro.optimize import RegimeMapSpec, compute_regime_map
    from repro.utils.units import MINUTE, YEAR

    spec = RegimeMapSpec(
        node_counts=(1_000, 10_000, 100_000),
        node_mtbf_values=(5 * YEAR, 25 * YEAR, 125 * YEAR),
        checkpoint_costs=(1 * MINUTE, 10 * MINUTE),
    )
    regime_map = compute_regime_map(spec, cache_dir="./regime-cache")
    print(regime_map.to_ascii())

The CLI front door is ``python -m repro.cli optimize {period,compare,map}``;
see EXPERIMENTS.md ("Strategy optimization and regime maps").
"""

from repro.optimize.period import (
    BracketError,
    PeriodOptimum,
    ScalarOptimum,
    bracket_minimum,
    brent_minimize,
    closed_form_periods,
    optimize_period,
)
from repro.optimize.refine import (
    RefineCandidate,
    RefinedOptimum,
    refine_period,
    simulate_at_periods,
)
from repro.optimize.regime import (
    DEFAULT_REGIME_PROTOCOLS,
    RegimeCell,
    RegimeMap,
    RegimeMapSpec,
    compute_regime_map,
)

__all__ = [
    "BracketError",
    "PeriodOptimum",
    "ScalarOptimum",
    "bracket_minimum",
    "brent_minimize",
    "closed_form_periods",
    "optimize_period",
    "RefineCandidate",
    "RefinedOptimum",
    "refine_period",
    "simulate_at_periods",
    "DEFAULT_REGIME_PROTOCOLS",
    "RegimeCell",
    "RegimeMap",
    "RegimeMapSpec",
    "compute_regime_map",
]
