"""Derivative-free numeric optimization of checkpoint/composite periods.

The paper evaluates every strategy *at its own optimal period* (Equation 11
for the periodic protocols); the comparison between strategies is only
meaningful under that convention.  The closed form exists because Equation 10
is analytically tractable -- but nothing guarantees a closed form for a
user-registered protocol, a non-default workload shape or a composite with
interacting periods.  This module searches numerically instead:

* :func:`brent_minimize` -- bounded scalar minimization by golden-section
  steps accelerated with successive parabolic interpolation (Brent's method,
  no scipy dependency);
* :func:`bracket_minimum` -- robust bracketing by scanning a (log-spaced)
  grid first, which tolerates the ``waste = 1`` plateaus that surround the
  feasible period interval (``P <= C`` and ``P >= 2 (mu - D - R)`` both
  predict no progress, so the objective is flat there and naive bracket
  expansion stalls);
* :func:`optimize_period` -- optimize every tunable period of a registered
  protocol's analytical model (:attr:`ProtocolEntry.period_parameters
  <repro.core.registry.ProtocolEntry.period_parameters>`) by cyclic
  coordinate descent, each coordinate solved with the two helpers above.

The objective is the model *waste* (Equation 12), not the final time: waste
maps the infeasible ``T_final = inf`` regime onto the bounded plateau value
``1.0``, so the optimizer never propagates infinities.  Where the closed form
is defined, the numeric optimum agrees with it to near machine precision
(the property tests pin a much stricter tolerance than the 0.1% the
acceptance criteria require).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.application.workload import ApplicationWorkload
from repro.core.analytical.base import ModelPrediction
from repro.core.analytical.young_daly import paper_optimal_period
from repro.core.parameters import ResilienceParameters
from repro.core.registry import resolve_protocol

__all__ = [
    "BracketError",
    "ScalarOptimum",
    "PeriodOptimum",
    "bracket_minimum",
    "brent_minimize",
    "closed_form_periods",
    "optimize_period",
]

#: Objective values closer than this to 1.0 count as the infeasible plateau.
_PLATEAU_TOL = 1e-12

#: Golden ratio constants of the section search.
_GOLDEN = 0.5 * (3.0 - math.sqrt(5.0))


def _period_cost(
    parameters: ResilienceParameters, keyword: str
) -> Optional[float]:
    """The checkpoint cost behind one tunable period keyword, if known.

    The paper's protocols expose ``period`` / ``general_period`` (full
    checkpoints of cost ``C``) and ``library_period`` (incremental
    checkpoints of cost ``C_L``); the Eq. 11 reference and the default
    search bounds both derive from this mapping.  ``None`` for keywords of
    third-party protocols, which get generic bounds and no closed form.
    """
    if keyword in ("period", "general_period"):
        return parameters.full_checkpoint
    if keyword == "library_period":
        return parameters.library_checkpoint
    return None


class BracketError(ValueError):
    """No descending bracket exists inside the search interval.

    Raised by :func:`bracket_minimum` when every probed point evaluates to
    the same value (a plateau -- typically the infeasible ``waste = 1``
    regime, where no period makes progress) or when the interval is
    degenerate.  :func:`optimize_period` catches it and reports the point as
    infeasible / flat instead of failing.
    """


@dataclass(frozen=True)
class ScalarOptimum:
    """Result of a one-dimensional minimization.

    Attributes
    ----------
    x / value:
        The minimizer and the objective value there.
    iterations / evaluations:
        Brent iterations performed and total objective evaluations
        (bracketing included when done through :func:`optimize_period`).
    converged:
        Whether the interval shrank below the requested tolerance before
        ``max_iter`` ran out.
    """

    x: float
    value: float
    iterations: int
    evaluations: int
    converged: bool


def bracket_minimum(
    f: Callable[[float], float],
    lower: float,
    upper: float,
    *,
    samples: int = 48,
    log: bool = True,
) -> Tuple[float, float, float, float, int]:
    """Find ``a < m < b`` with ``f(m) <= f(a)`` and ``f(m) <= f(b)``.

    Scans ``samples`` points (geometrically spaced when ``log``) across
    ``[lower, upper]`` and brackets the best one with its neighbours.  The
    scan is what makes the search robust to the flat ``waste = 1`` plateaus
    at both ends of the feasible period interval: a classical expanding
    bracket walks onto a plateau and stalls, while the scan simply lands
    inside the basin as long as one sample does.

    Returns ``(a, m, b, f(m), evaluations)``.

    Raises
    ------
    BracketError
        If the interval is degenerate (``lower >= upper``), or every sample
        evaluates to the same value so there is no basin to bracket --
        callers distinguish the all-plateau case by probing ``f`` once.
    """
    if not (math.isfinite(lower) and math.isfinite(upper)) or lower >= upper:
        raise BracketError(
            f"degenerate bracket interval [{lower!r}, {upper!r}]"
        )
    if samples < 3:
        raise ValueError(f"samples must be >= 3, got {samples}")
    if log and lower <= 0.0:
        log = False
    if log:
        ratio = (upper / lower) ** (1.0 / (samples - 1))
        xs = [lower * ratio**i for i in range(samples)]
    else:
        step = (upper - lower) / (samples - 1)
        xs = [lower + step * i for i in range(samples)]
    xs[-1] = upper
    values = [f(x) for x in xs]
    best = min(range(samples), key=lambda i: (values[i], i))
    if values[best] >= max(values) - _PLATEAU_TOL:
        raise BracketError(
            "objective is flat over the whole search interval "
            f"[{lower:.6g}, {upper:.6g}] (value {values[best]:.6g})"
        )
    a = xs[best - 1] if best > 0 else xs[0]
    b = xs[best + 1] if best < samples - 1 else xs[-1]
    return a, xs[best], b, values[best], samples


def brent_minimize(
    f: Callable[[float], float],
    a: float,
    b: float,
    *,
    rtol: float = 1e-10,
    atol: float = 1e-12,
    max_iter: int = 200,
) -> ScalarOptimum:
    """Minimize ``f`` on ``[a, b]`` with Brent's bounded method.

    Golden-section steps guarantee linear convergence on any unimodal
    function; successive parabolic interpolation accelerates it to
    superlinear near a smooth minimum.  This is the classical safeguarded
    combination (Brent 1973), the same algorithm scipy's ``bounded`` solver
    implements -- reimplemented here because the repository deliberately
    depends on NumPy only.
    """
    if not a < b:
        raise BracketError(f"degenerate bracket interval [{a!r}, {b!r}]")
    x = w = v = a + _GOLDEN * (b - a)
    fx = fw = fv = f(x)
    evaluations = 1
    delta = delta_prev = 0.0
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        midpoint = 0.5 * (a + b)
        tol = rtol * abs(x) + atol
        if abs(x - midpoint) <= 2.0 * tol - 0.5 * (b - a):
            converged = True
            break
        use_golden = True
        if abs(delta_prev) > tol:
            # Fit a parabola through (w, fw), (x, fx), (v, fv).
            r = (x - w) * (fx - fv)
            q = (x - v) * (fx - fw)
            p = (x - v) * q - (x - w) * r
            q = 2.0 * (q - r)
            if q > 0.0:
                p = -p
            q = abs(q)
            if (
                abs(p) < abs(0.5 * q * delta_prev)
                and p > q * (a - x)
                and p < q * (b - x)
            ):
                delta_prev, delta = delta, p / q
                u = x + delta
                if u - a < 2.0 * tol or b - u < 2.0 * tol:
                    delta = tol if midpoint >= x else -tol
                use_golden = False
        if use_golden:
            delta_prev = (b - x) if x < midpoint else (a - x)
            delta = _GOLDEN * delta_prev
        u = x + delta if abs(delta) >= tol else x + (tol if delta > 0 else -tol)
        fu = f(u)
        evaluations += 1
        if fu <= fx:
            if u >= x:
                a = x
            else:
                b = x
            v, w, x = w, x, u
            fv, fw, fx = fw, fx, fu
        else:
            if u < x:
                a = u
            else:
                b = u
            if fu <= fw or w == x:
                v, w = w, u
                fv, fw = fw, fu
            elif fu <= fv or v == x or v == w:
                v, fv = u, fu
    return ScalarOptimum(
        x=x, value=fx, iterations=iterations, evaluations=evaluations,
        converged=converged,
    )


# ---------------------------------------------------------------------- #
# Protocol-level optimization
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PeriodOptimum:
    """Numeric optimum of one protocol at one parameter point.

    Attributes
    ----------
    protocol:
        Canonical protocol name.
    periods:
        Optimal value per tunable period keyword (empty when the protocol
        has none, e.g. NoFT; ``nan`` values in the infeasible regime).
    waste:
        Minimal model waste (Equation 12) over the searched periods; ``1.0``
        when no period makes progress.
    prediction:
        The model prediction at the optimum (``None`` only in the infeasible
        regime, where no meaningful period exists to evaluate at).
    closed_form:
        Equation 11 reference period per keyword, where one is defined
        (``nan`` where the closed form has no real solution).
    evaluations:
        Total model evaluations spent (bracketing + Brent, all rounds).
    converged / feasible / flat:
        Whether every coordinate search converged; whether the optimum makes
        progress (``waste < 1``); whether the objective was flat in every
        tunable period (zero checkpoint cost makes the period irrelevant).
    """

    protocol: str
    periods: Mapping[str, float]
    waste: float
    prediction: Optional[ModelPrediction] = None
    closed_form: Mapping[str, float] = field(default_factory=dict)
    evaluations: int = 0
    converged: bool = True
    feasible: bool = True
    flat: bool = False

    def period(self) -> float:
        """The single optimal period, for protocols with exactly one knob."""
        if len(self.periods) != 1:
            raise ValueError(
                f"protocol {self.protocol!r} has {len(self.periods)} tunable "
                f"periods ({sorted(self.periods)}), not one"
            )
        return next(iter(self.periods.values()))

    def relative_error(self, keyword: str) -> float:
        """``|numeric - closed form| / closed form`` for one keyword.

        ``nan`` when no closed form is defined there (infeasible regime or
        zero checkpoint cost).
        """
        reference = self.closed_form.get(keyword, math.nan)
        value = self.periods.get(keyword, math.nan)
        if not (math.isfinite(reference) and math.isfinite(value)) or reference == 0:
            return math.nan
        return abs(value - reference) / reference

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible summary (used by the regime-map serialization)."""

        def jsonable(value: float) -> Optional[float]:
            return float(value) if math.isfinite(value) else None

        return {
            "protocol": self.protocol,
            "periods": {k: jsonable(v) for k, v in sorted(self.periods.items())},
            "waste": float(self.waste),
            "closed_form": {
                k: jsonable(v) for k, v in sorted(self.closed_form.items())
            },
            "evaluations": int(self.evaluations),
            "converged": bool(self.converged),
            "feasible": bool(self.feasible),
            "flat": bool(self.flat),
        }


def closed_form_periods(
    parameters: ResilienceParameters, keywords: Sequence[str]
) -> Dict[str, float]:
    """Equation 11 reference period per tunable keyword, where defined.

    The paper's three protocols expose ``period`` / ``general_period``
    (checkpoint cost ``C``) and ``library_period`` (cost ``C_L``); for those
    the closed form ``sqrt(2 C (mu - D - R))`` is the exact minimizer of the
    Equation 10 waste, so it doubles as the validation reference for the
    numeric search.  Unknown keywords (a third-party protocol's knob) and
    zero checkpoint costs map to ``nan`` -- no reference, numeric only.
    """
    out: Dict[str, float] = {}
    for keyword in keywords:
        cost = _period_cost(parameters, keyword)
        if cost is None or cost <= 0.0:
            out[keyword] = math.nan
        else:
            out[keyword] = paper_optimal_period(
                cost,
                parameters.platform_mtbf,
                parameters.downtime,
                parameters.full_recovery,
            )
    return out


def _default_bounds(
    parameters: ResilienceParameters, keyword: str
) -> Tuple[float, float]:
    """Search interval for one period keyword.

    The feasible interval of the Equation 10 waste is
    ``(C, 2 (mu - D - R))``: shorter periods spend everything checkpointing,
    longer ones cannot outrun the failure rate.  The default bounds enclose
    it with margin -- plateaus outside are handled by the scanning bracket --
    and stay positive even for zero checkpoint cost.
    """
    mtbf = parameters.platform_mtbf
    cost = _period_cost(parameters, keyword) or 0.0
    lower = max(cost * (1.0 + 1e-9), mtbf * 1e-7)
    upper = max(4.0 * mtbf, 8.0 * cost, lower * 16.0)
    return lower, upper


def optimize_period(
    protocol: str,
    parameters: ResilienceParameters,
    workload: ApplicationWorkload,
    *,
    period_parameters: Optional[Sequence[str]] = None,
    bounds: Optional[Mapping[str, Tuple[float, float]]] = None,
    model_kwargs: Optional[Mapping[str, Any]] = None,
    samples: int = 48,
    rtol: float = 1e-10,
    max_rounds: int = 4,
) -> PeriodOptimum:
    """Numerically optimize every tunable period of one protocol.

    Parameters
    ----------
    protocol:
        Registered protocol name or alias.
    parameters / workload:
        The parameter point and application to optimize at.
    period_parameters:
        Tunable constructor keywords to search over; ``None`` uses the
        registry's discovery (:attr:`ProtocolEntry.period_parameters
        <repro.core.registry.ProtocolEntry.period_parameters>`), so newly
        registered protocols are optimizable without extra wiring.
    bounds:
        Per-keyword ``(lower, upper)`` search intervals overriding the
        defaults derived from the parameter scalars.
    model_kwargs:
        Extra analytical-model constructor options (e.g. the composite's
        ``per_epoch=False``); tunable keywords appearing here are fixed at
        the given value and excluded from the search.
    samples:
        Bracketing scan resolution per coordinate (log-spaced).
    rtol:
        Relative tolerance of the Brent refinement.
    max_rounds:
        Cyclic coordinate-descent rounds for multi-period protocols.  The
        paper's composites have separable periods (each phase type owns its
        period), for which a single round is already exact; extra rounds
        only run while they still improve the waste.

    Returns
    -------
    PeriodOptimum
        Numeric optimum with the Equation 11 references where defined.  In
        the infeasible regime (e.g. ``mu <= D + R``) every period maps to
        ``nan``, ``waste`` is 1 and ``feasible`` is False; with a flat
        objective (zero checkpoint cost) the best scanned point is kept and
        ``flat`` is True.
    """
    entry = resolve_protocol(protocol)
    if entry.model_cls is None:
        raise ValueError(f"protocol {entry.name!r} has no analytical model")
    base_kwargs = dict(model_kwargs or {})
    keywords = tuple(
        period_parameters
        if period_parameters is not None
        else entry.period_parameters
    )
    keywords = tuple(k for k in keywords if k not in base_kwargs)

    def evaluate(periods: Mapping[str, float]) -> ModelPrediction:
        model = entry.model_cls(parameters, **base_kwargs, **periods)
        return model.evaluate(workload)

    if not keywords:
        prediction = evaluate({})
        return PeriodOptimum(
            protocol=entry.name,
            periods={},
            waste=prediction.waste,
            prediction=prediction,
            evaluations=1,
            feasible=prediction.waste < 1.0,
        )

    closed_form = closed_form_periods(parameters, keywords)
    # Start every coordinate at its closed-form reference when defined (the
    # search then only confirms/refines), else mid-interval.
    # Reject degenerate user bounds up front: inside the search loop a
    # degenerate interval is indistinguishable from the waste plateau and
    # would be silently mislabeled as infeasible/flat.
    for keyword in keywords:
        explicit = (bounds or {}).get(keyword)
        if explicit is not None and not explicit[0] < explicit[1]:
            raise ValueError(
                f"degenerate bounds for {keyword!r}: "
                f"({explicit[0]!r}, {explicit[1]!r})"
            )
    current: Dict[str, float] = {}
    for keyword in keywords:
        lo, hi = (bounds or {}).get(keyword) or _default_bounds(parameters, keyword)
        reference = closed_form[keyword]
        current[keyword] = (
            reference if math.isfinite(reference) and lo < reference < hi
            else math.sqrt(lo * hi)
        )

    evaluations = 0
    converged = True
    flat_keywords: set = set()
    best_waste = math.inf
    for round_index in range(max_rounds):
        round_start = best_waste
        for keyword in keywords:
            lo, hi = (bounds or {}).get(keyword) or _default_bounds(
                parameters, keyword
            )

            def objective(value: float, _keyword: str = keyword) -> float:
                return evaluate({**current, _keyword: value}).waste

            try:
                a, m, b, bracket_value, scans = bracket_minimum(
                    objective, lo, hi, samples=samples
                )
            except BracketError:
                evaluations += samples
                probe = objective(current[keyword])
                evaluations += 1
                if probe >= 1.0 - _PLATEAU_TOL:
                    # Infeasible plateau: waste is 1 whatever the period.
                    return PeriodOptimum(
                        protocol=entry.name,
                        periods={k: math.nan for k in keywords},
                        waste=1.0,
                        prediction=None,
                        closed_form=closed_form,
                        evaluations=evaluations,
                        converged=True,
                        feasible=False,
                    )
                # Flat but feasible (zero checkpoint cost): the period is
                # irrelevant, keep the current value.
                flat_keywords.add(keyword)
                best_waste = min(best_waste, probe)
                continue
            evaluations += scans
            refined = brent_minimize(objective, a, b, rtol=rtol)
            evaluations += refined.evaluations
            converged = converged and refined.converged
            # Brent can only improve on its own bracket midpoint, but guard
            # against pathological plateaus inside the bracket.
            if refined.value <= bracket_value:
                current[keyword] = refined.x
                best_waste = refined.value
            else:
                current[keyword] = m
                best_waste = bracket_value
        if len(keywords) == 1:
            # One knob: the search is deterministic over fixed bounds, so a
            # second round would redo identical work.
            break
        if round_index > 0 and round_start - best_waste <= rtol:
            break

    prediction = evaluate(current)
    evaluations += 1
    return PeriodOptimum(
        protocol=entry.name,
        periods=dict(current),
        waste=prediction.waste,
        prediction=prediction,
        closed_form=closed_form,
        evaluations=evaluations,
        converged=converged,
        feasible=prediction.waste < 1.0,
        flat=bool(flat_keywords) and flat_keywords == set(keywords),
    )
