"""Simulation-backed refinement of the analytical period optimum.

The analytical optimum of :func:`repro.optimize.period.optimize_period`
minimizes the *model* waste; the Monte-Carlo engine is the ground truth the
paper validates that model against.  :func:`refine_period` closes the loop:
starting from the analytical optimum it evaluates a small geometric fan of
candidate periods with real campaigns -- through the vectorized across-trials
engine where the (protocol, failure law) pair supports it, through the event
simulators fanned over :class:`~repro.campaign.executor.ParallelMonteCarloExecutor`
otherwise -- and returns the candidate with the lowest simulated mean waste,
optionally narrowing the fan around the winner for further rounds.

Every candidate campaign is cached in a
:class:`~repro.campaign.cache.SweepCache` under a key covering the parameter
scalars, the workload shape, the periods, the campaign size and the failure
law, so an interrupted refinement resumes where it stopped and repeated
refinements of the same configuration are free.  The engine backends are
bit-identical trial for trial, so -- exactly like the sweep cache -- the
backend is *not* part of the key.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

import repro.obs as _obs
from repro.application.workload import ApplicationWorkload
from repro.campaign.cache import SweepCache
from repro.campaign.executor import (
    ParallelMonteCarloExecutor,
    ShardedVectorizedExecutor,
)
from repro.core.parameters import ResilienceParameters
from repro.core.registry import (
    create_failure_model,
    resolve_failure_model,
    resolve_protocol,
    vectorized_protocol_names,
)
from repro.optimize.period import PeriodOptimum, optimize_period
from repro.simulation.vectorized import (
    ENGINE_BACKENDS,
    VectorizedBackendError,
    note_backend_fallback,
    supports_vectorized_backend,
    vectorized_backend_obstacle,
)

#: The simulators' truncation-cap default; the candidate cache key includes
#: ``max_slowdown`` only when it differs from this, so the literal must
#: exist exactly once -- drifting defaults would silently reuse summaries
#: computed under a different cap.
DEFAULT_MAX_SLOWDOWN = 1e4

__all__ = ["RefineCandidate", "RefinedOptimum", "refine_period", "simulate_at_periods"]


@dataclass(frozen=True)
class RefineCandidate:
    """One simulated candidate: a period assignment and its campaign summary."""

    periods: Mapping[str, float]
    scale: float
    waste_mean: float
    summary: Mapping[str, Any] = field(default_factory=dict)
    cached: bool = False

    @property
    def waste_ci_half_width(self) -> Optional[float]:
        """Half-width of the campaign's waste confidence interval."""
        return self.summary.get("waste_ci_half_width")


@dataclass(frozen=True)
class RefinedOptimum:
    """Outcome of a simulation-backed period refinement.

    Attributes
    ----------
    protocol:
        Canonical protocol name.
    analytical:
        The analytical optimum the refinement started from.
    candidates:
        Every simulated candidate, in evaluation order (all rounds).
    best:
        The candidate with the lowest simulated mean waste (``None`` when
        the analytical point was infeasible, so nothing was simulated).
    runs / seed:
        Campaign size and root seed shared by every candidate.
    computed / cached:
        How many candidate campaigns were simulated in this call vs loaded
        from the cache -- a fully resumed refinement reports ``computed == 0``.
    """

    protocol: str
    analytical: PeriodOptimum
    candidates: Tuple[RefineCandidate, ...]
    best: Optional[RefineCandidate]
    runs: int
    seed: Optional[int]
    computed: int = 0
    cached: int = 0

    @property
    def refined_periods(self) -> Mapping[str, float]:
        """The winning period assignment (analytical one when not simulated)."""
        if self.best is None:
            return self.analytical.periods
        return self.best.periods

    @property
    def shift(self) -> float:
        """Relative scale between the refined and the analytical periods."""
        if self.best is None:
            return 1.0
        return self.best.scale


def _candidate_key(
    protocol: str,
    parameters: ResilienceParameters,
    workload: ApplicationWorkload,
    periods: Mapping[str, float],
    *,
    runs: int,
    seed: Optional[int],
    failure_model: str,
    failure_params: Mapping[str, Any],
    max_slowdown: float,
    simulator_kwargs: Mapping[str, Any] = (),
) -> Dict[str, Any]:
    """Cache key of one candidate campaign (one JSON file per candidate)."""
    key: Dict[str, Any] = {
        "optimize": "refine-candidate",
        "protocol": protocol,
        "application_time": workload.total_time,
        "alpha": workload.alpha,
        "epochs": workload.epoch_count,
        "checkpoint": parameters.full_checkpoint,
        "recovery": parameters.full_recovery,
        "downtime": parameters.downtime,
        "rho": parameters.rho,
        "abft_overhead": parameters.abft_overhead,
        "abft_reconstruction": parameters.abft_reconstruction,
        "remainder_recovery": parameters.remainder_recovery,
        "mtbf": parameters.platform_mtbf,
        "periods": {k: periods[k] for k in sorted(periods)},
        "runs": runs,
        "seed": seed,
    }
    if failure_model != "exponential" or failure_params:
        key["failure_model"] = failure_model
        key["failure_params"] = {
            k: failure_params[k] for k in sorted(failure_params)
        }
    if max_slowdown != DEFAULT_MAX_SLOWDOWN:
        key["max_slowdown"] = max_slowdown
    simulator_kwargs = dict(simulator_kwargs)
    if simulator_kwargs:
        key["simulator_kwargs"] = {
            k: simulator_kwargs[k] for k in sorted(simulator_kwargs)
        }
    return key


def simulate_at_periods(
    protocol: str,
    parameters: ResilienceParameters,
    workload: ApplicationWorkload,
    periods: Mapping[str, float],
    *,
    runs: int,
    seed: Optional[int],
    backend: str = "auto",
    executor: Optional[ParallelMonteCarloExecutor] = None,
    vector_executor: Optional[ShardedVectorizedExecutor] = None,
    failure_model: str = "exponential",
    failure_params: Optional[Mapping[str, Any]] = None,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
    simulator_kwargs: Optional[Mapping[str, Any]] = None,
) -> Mapping[str, Any]:
    """Run one campaign at an explicit period assignment; return its summary.

    Backend selection mirrors the sweep runner's: ``"vectorized"`` requires
    the protocol's across-trials engine and a registry-flagged vectorized
    law (else a :class:`VectorizedBackendError` names the obstacle),
    ``"auto"`` falls back to the event simulators fanned over ``executor``.
    Vectorized campaigns shard their trial range over ``vector_executor``
    when one is given (serial otherwise) -- bit-identical either way.

    ``simulator_kwargs`` carries protocol options beyond the periods (e.g.
    the composite's ``safeguard``) into the engine constructors, following
    the :func:`repro.core.registry.resolve` model/simulator split.
    """
    if backend not in ENGINE_BACKENDS:
        raise ValueError(
            f"unknown engine backend {backend!r}; expected one of {ENGINE_BACKENDS}"
        )
    entry = resolve_protocol(protocol)
    failure_params = dict(failure_params or {})
    law = resolve_failure_model(failure_model).name
    if law == "exponential" and not failure_params:
        model = None  # the simulators' default: bit-identical fast path
    else:
        model = create_failure_model(
            law, parameters.platform_mtbf, **failure_params
        )
    use_vectorized = backend in (
        "vectorized",
        "auto",
    ) and supports_vectorized_backend(entry.vectorized_cls, model)
    if backend in ("vectorized", "auto") and not use_vectorized:
        detail = vectorized_backend_obstacle(
            entry.vectorized_cls,
            model,
            protocol=entry.name,
            law=law,
            available=vectorized_protocol_names(),
        )
        if backend == "vectorized":
            raise VectorizedBackendError(
                f"backend='vectorized' cannot refine this configuration: "
                f"{detail}; use backend='event' or backend='auto'"
            )
        note_backend_fallback(detail)
    kwargs = {**dict(simulator_kwargs or {}), **dict(periods)}
    if use_vectorized:
        engine = entry.vectorized_cls(
            parameters,
            workload,
            failure_model=model,
            max_slowdown=max_slowdown,
            **kwargs,
        )
        if vector_executor is not None:
            table = vector_executor.run(engine, runs=runs, seed=seed)
        else:
            table = engine.run_trials(runs, seed=seed)
    else:
        simulator = entry.simulator_cls(
            parameters,
            workload,
            failure_model=model,
            max_slowdown=max_slowdown,
            **kwargs,
        )
        campaign = (executor or ParallelMonteCarloExecutor(workers=1)).run(
            simulator.simulate_once, runs=runs, seed=seed
        )
        table = campaign.table
    return table.summary_dict()


def _scales(span: float, points: int) -> Tuple[float, ...]:
    """Geometric fan of scale factors within ``[1/span, span]``.

    Always contains 1.0 (the analytical optimum itself) exactly; odd counts
    are symmetric around it, even counts place the extra point below it.
    """
    if points == 1:
        return (1.0,)
    half = points // 2
    ratio = span ** (1.0 / half)
    down = [ratio**-i for i in range(half, 0, -1)]
    up = [ratio**i for i in range(1, points - half)]
    return tuple(down) + (1.0,) + tuple(up)


def refine_period(
    protocol: str,
    parameters: ResilienceParameters,
    workload: ApplicationWorkload,
    *,
    runs: int = 200,
    seed: Optional[int] = 2014,
    backend: str = "auto",
    workers: Optional[int] = None,
    pool_backend: str = "process",
    cache_dir: Optional["str | Path"] = None,
    resume: bool = True,
    span: float = 2.0,
    points: int = 5,
    rounds: int = 2,
    failure_model: str = "exponential",
    failure_params: Optional[Mapping[str, Any]] = None,
    model_kwargs: Optional[Mapping[str, Any]] = None,
    simulator_kwargs: Optional[Mapping[str, Any]] = None,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
    analytical: Optional[PeriodOptimum] = None,
    executor: Optional[ParallelMonteCarloExecutor] = None,
    vector_executor: Optional[ShardedVectorizedExecutor] = None,
) -> RefinedOptimum:
    """Re-optimize a protocol's period against the Monte-Carlo engine.

    Parameters
    ----------
    protocol / parameters / workload:
        The configuration to refine, as in :func:`optimize_period`.
    runs / seed:
        Campaign size and root seed per candidate (shared, so candidates
        are compared on identical failure streams).
    backend:
        Monte-Carlo engine: ``"auto"`` (default; vectorized where supported,
        event elsewhere), ``"vectorized"`` or ``"event"``.
    workers / pool_backend:
        Worker-pool settings.  Event-backend campaigns fan out through
        :class:`~repro.campaign.executor.ParallelMonteCarloExecutor`;
        vectorized campaigns shard their trial range through
        :class:`~repro.campaign.executor.ShardedVectorizedExecutor`
        (process pools only, so a non-``"process"`` ``pool_backend`` runs
        them serially).  Bit-identical for any worker count.
    cache_dir / resume:
        Candidate-campaign cache directory (``None`` disables caching) and
        whether to consult existing entries, exactly like the sweep runner
        -- an interrupted refinement picks up where it stopped.
    span / points / rounds:
        Fan geometry: each round simulates ``points`` candidates scaling
        every tunable period by factors spanning ``[1/span, span]`` around
        the current best, then narrows the span (square root) for the next
        round.
    failure_model / failure_params:
        Failure law of the campaigns (any registered model); laws without
        vectorized block sampling (subclassed or third-party models) force
        the event backend.
    model_kwargs / simulator_kwargs:
        Protocol options beyond the periods, split as in
        :func:`repro.core.registry.resolve`: ``model_kwargs`` shape the
        analytical starting point (:func:`optimize_period`; may include
        model-only options like the composite's ``per_epoch``),
        ``simulator_kwargs`` are forwarded to every simulated candidate's
        engine constructor and become part of the candidate cache keys.
        An option both sides understand (e.g. ``safeguard``) must be passed
        in both to keep the analytical and simulated configurations aligned.
    analytical:
        Reuse a precomputed analytical optimum instead of recomputing it.
    executor / vector_executor:
        Reuse existing executors (:class:`ParallelMonteCarloExecutor` for
        event-backend campaigns, :class:`ShardedVectorizedExecutor` for
        vectorized ones) instead of constructing them from ``workers`` /
        ``pool_backend`` (the advisor service's background jobs share
        executors this way).
    """
    if points <= 0 or rounds <= 0:
        raise ValueError("points and rounds must be positive")
    if span <= 1.0:
        raise ValueError(f"span must be > 1, got {span}")
    entry = resolve_protocol(protocol)
    start = analytical if analytical is not None else optimize_period(
        entry.name, parameters, workload, model_kwargs=model_kwargs
    )
    if not start.feasible or not start.periods:
        # Nothing to refine: no tunable period, or no period makes progress.
        return RefinedOptimum(
            protocol=entry.name,
            analytical=start,
            candidates=(),
            best=None,
            runs=runs,
            seed=seed,
        )

    cache = SweepCache(cache_dir) if cache_dir is not None else None
    if executor is None:
        executor = ParallelMonteCarloExecutor(
            workers=1 if workers is None else workers, backend=pool_backend
        )
    if vector_executor is None:
        vector_executor = ShardedVectorizedExecutor(
            workers=1 if workers is None else workers,
            backend="process" if pool_backend == "process" else "serial",
        )
    law = resolve_failure_model(failure_model).name
    law_params = dict(failure_params or {})
    engine_kwargs = dict(simulator_kwargs or {})

    candidates: list[RefineCandidate] = []
    seen: set = set()
    computed = 0
    cached_count = 0
    best: Optional[RefineCandidate] = None
    center = dict(start.periods)
    center_scale = 1.0
    current_span = float(span)
    for _ in range(rounds):
        for scale in _scales(current_span, points):
            absolute = center_scale * scale
            periods = {k: v * scale for k, v in center.items()}
            signature = tuple(sorted(periods.items()))
            if signature in seen:
                continue
            seen.add(signature)
            key = _candidate_key(
                entry.name,
                parameters,
                workload,
                periods,
                runs=runs,
                seed=seed,
                failure_model=law,
                failure_params=law_params,
                max_slowdown=max_slowdown,
                simulator_kwargs=engine_kwargs,
            )
            summary = cache.load(key) if (cache is not None and resume) else None
            was_cached = summary is not None
            if _obs.enabled():
                _obs.catalog.family("repro_refine_candidates_total").inc(
                    outcome="cached" if was_cached else "computed"
                )
            if summary is None:
                summary = dict(
                    simulate_at_periods(
                        entry.name,
                        parameters,
                        workload,
                        periods,
                        runs=runs,
                        seed=seed,
                        backend=backend,
                        executor=executor,
                        vector_executor=vector_executor,
                        failure_model=law,
                        failure_params=law_params,
                        max_slowdown=max_slowdown,
                        simulator_kwargs=engine_kwargs,
                    )
                )
                if cache is not None:
                    cache.store(key, summary)
                computed += 1
            else:
                cached_count += 1
            mean = summary.get("waste_mean")
            candidate = RefineCandidate(
                periods=periods,
                scale=absolute,
                waste_mean=math.nan if mean is None else float(mean),
                summary=summary,
                cached=was_cached,
            )
            candidates.append(candidate)
            if (
                best is None
                or not math.isfinite(best.waste_mean)
                or (
                    math.isfinite(candidate.waste_mean)
                    and candidate.waste_mean < best.waste_mean
                )
            ):
                best = candidate
        if best is not None:
            center = dict(best.periods)
            center_scale = best.scale
        current_span = math.sqrt(current_span)
    return RefinedOptimum(
        protocol=entry.name,
        analytical=start,
        candidates=tuple(candidates),
        best=best,
        runs=runs,
        seed=seed,
        computed=computed,
        cached=cached_count,
    )
