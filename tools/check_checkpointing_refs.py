#!/usr/bin/env python
"""Fail if any public repro.checkpointing name is dormant again.

The storage zoo shipped dormant: classes existed but nothing in the rest of
the source tree constructed or accepted them.  PR 10 wired the axis through
the registry, parameters, protocols, scenarios, the optimizer and the
service -- and this check keeps it that way.  Every name in
``repro.checkpointing.__all__`` must be referenced somewhere under ``src/``
*outside* the ``repro/checkpointing/`` package itself; a name only its own
package mentions is dead API surface.

Run from the repository root (CI runs it as a lint step)::

    python tools/check_checkpointing_refs.py

Exits 0 when every public name is referenced, 1 otherwise, listing the
dormant names.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
PACKAGE_DIR = SRC_ROOT / "repro" / "checkpointing"


def public_names() -> list[str]:
    """Parse ``__all__`` out of the package's ``__init__`` without importing."""
    text = (PACKAGE_DIR / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r"__all__\s*=\s*\[(.*?)\]", text, flags=re.DOTALL)
    if match is None:
        raise SystemExit("repro/checkpointing/__init__.py has no __all__")
    return re.findall(r"[\"']([A-Za-z_][A-Za-z0-9_]*)[\"']", match.group(1))


def referencing_files(name: str) -> list[Path]:
    pattern = re.compile(rf"\b{re.escape(name)}\b")
    hits = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if PACKAGE_DIR in path.parents:
            continue
        if pattern.search(path.read_text(encoding="utf-8")):
            hits.append(path.relative_to(REPO_ROOT))
    return hits


def main() -> int:
    dormant = []
    for name in public_names():
        hits = referencing_files(name)
        if hits:
            print(f"ok: {name} ({len(hits)} referencing files)")
        else:
            dormant.append(name)
    if dormant:
        print(
            "\ndormant public checkpointing API (referenced nowhere in src/ "
            "outside repro/checkpointing/):",
            file=sys.stderr,
        )
        for name in dormant:
            print(f"  {name}", file=sys.stderr)
        return 1
    print("all public repro.checkpointing names are referenced outside the package")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
