"""Setuptools shim.

Package metadata lives in ``pyproject.toml``; this file only exists so that
``pip install -e .`` can fall back to the legacy (setup.py develop) editable
path on environments whose setuptools/wheel combination does not support
PEP 660 editable wheels (e.g. offline machines without the ``wheel``
package).
"""

from setuptools import setup

setup()
