"""Shared fixtures: the paper's reference configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ApplicationWorkload, ResilienceParameters
from repro.utils import MINUTE, WEEK


@pytest.fixture
def paper_parameters() -> ResilienceParameters:
    """The Figure 7 parameter set at a 120-minute platform MTBF."""
    return ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=1 * MINUTE,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )


@pytest.fixture
def paper_workload() -> ApplicationWorkload:
    """The Figure 7 single-epoch, one-week application at alpha = 0.8."""
    return ApplicationWorkload.single_epoch(1 * WEEK, 0.8, library_fraction=0.8)


@pytest.fixture
def small_workload() -> ApplicationWorkload:
    """A smaller single-epoch workload for fast simulation tests."""
    return ApplicationWorkload.single_epoch(
        24 * 60 * MINUTE, 0.8, library_fraction=0.8
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic NumPy generator."""
    return np.random.default_rng(2014)
