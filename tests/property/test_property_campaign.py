"""Property tests: serial/parallel Monte-Carlo seed-equivalence.

The campaign executor's contract is that for a given root seed the parallel
path reproduces the serial :func:`run_monte_carlo` *exactly* -- bit-identical
summary statistics for any worker count, chunk size or backend.  These tests
assert ``==`` on every field of the summaries, never approximate equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import ParallelMonteCarloExecutor, run_monte_carlo_parallel
from repro.core.protocols import (
    AbftPeriodicCkptSimulator,
    BiPeriodicCkptSimulator,
    PurePeriodicCkptSimulator,
)
from repro.simulation import run_monte_carlo
from repro.simulation.trace import ExecutionTrace, TimeBreakdown
from repro.utils import HOUR, MINUTE
from repro import ApplicationWorkload, ResilienceParameters


def _toy_simulation(rng: np.random.Generator) -> ExecutionTrace:
    """Toy stochastic run (module-level so process pools can pickle it)."""
    extra = float(rng.exponential(25.0))
    return ExecutionTrace(
        protocol="toy",
        application_time=100.0,
        makespan=100.0 + extra,
        failure_count=int(extra > 25.0),
        breakdown=TimeBreakdown(useful_work=100.0, lost_work=extra),
    )


def _paper_simulator(protocol_cls):
    params = ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=60.0,
        library_fraction=0.8,
    )
    workload = ApplicationWorkload.single_epoch(24 * HOUR, 0.8, library_fraction=0.8)
    return protocol_cls(params, workload)


def _assert_identical(serial, parallel):
    """Every aggregate field must match exactly -- no tolerance."""
    assert parallel.protocol == serial.protocol
    assert parallel.runs == serial.runs
    assert parallel.application_time == serial.application_time
    for name in ("waste", "makespan", "failures"):
        a = getattr(serial, name)
        b = getattr(parallel, name)
        assert b == a, f"{name} summaries differ: {a} vs {b}"


class TestSeedEquivalence:
    """Random (seed, runs, workers, chunk) draws: parallel == serial exactly."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        runs=st.integers(min_value=1, max_value=60),
        workers=st.integers(min_value=1, max_value=5),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=17)),
    )
    def test_thread_backend_bit_identical(self, seed, runs, workers, chunk_size):
        serial = run_monte_carlo(_toy_simulation, runs=runs, seed=seed)
        executor = ParallelMonteCarloExecutor(
            workers=workers, backend="thread", chunk_size=chunk_size
        )
        _assert_identical(serial, executor.run(_toy_simulation, runs=runs, seed=seed))

    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_process_backend_bit_identical(self, workers):
        serial = run_monte_carlo(_toy_simulation, runs=50, seed=20140527)
        parallel = run_monte_carlo_parallel(
            _toy_simulation, runs=50, seed=20140527, workers=workers
        )
        _assert_identical(serial, parallel)

    @pytest.mark.parametrize(
        "protocol_cls",
        [PurePeriodicCkptSimulator, BiPeriodicCkptSimulator, AbftPeriodicCkptSimulator],
        ids=lambda cls: cls.__name__,
    )
    def test_protocol_simulators_bit_identical(self, protocol_cls):
        simulator = _paper_simulator(protocol_cls)
        serial = run_monte_carlo(simulator.simulate_once, runs=30, seed=42)
        parallel = run_monte_carlo_parallel(
            simulator.simulate_once, runs=30, seed=42, workers=3
        )
        _assert_identical(serial, parallel)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        workers=st.integers(min_value=2, max_value=4),
    )
    def test_traces_preserved_in_trial_order(self, seed, workers):
        serial = run_monte_carlo(
            _toy_simulation, runs=20, seed=seed, keep_traces=True
        )
        parallel = ParallelMonteCarloExecutor(
            workers=workers, backend="thread", chunk_size=3
        ).run(_toy_simulation, runs=20, seed=seed, keep_traces=True)
        assert [t.makespan for t in parallel.traces] == [
            t.makespan for t in serial.traces
        ]

    def test_different_seeds_still_differ(self):
        a = run_monte_carlo_parallel(
            _toy_simulation, runs=40, seed=1, workers=2, backend="thread"
        )
        b = run_monte_carlo_parallel(
            _toy_simulation, runs=40, seed=2, workers=2, backend="thread"
        )
        assert a.mean_waste != b.mean_waste


class TestChunking:
    @settings(max_examples=25, deadline=None)
    @given(
        runs=st.integers(min_value=1, max_value=500),
        workers=st.integers(min_value=1, max_value=8),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
    )
    def test_chunks_partition_the_trial_range(self, runs, workers, chunk_size):
        executor = ParallelMonteCarloExecutor(
            workers=workers, backend="thread", chunk_size=chunk_size
        )
        chunks = executor.chunk_ranges(runs)
        covered = [i for start, stop in chunks for i in range(start, stop)]
        assert covered == list(range(runs))
