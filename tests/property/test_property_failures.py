"""Property-based tests of the failure models and timelines."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.failures import (
    ExponentialFailureModel,
    FailureTimeline,
    LogNormalFailureModel,
    TraceFailureModel,
    WeibullFailureModel,
    platform_mtbf,
)

mtbfs = st.floats(min_value=1.0, max_value=1e7)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=50, deadline=None)
@given(mtbf=mtbfs, seed=seeds)
def test_exponential_samples_positive_and_finite(mtbf, seed):
    model = ExponentialFailureModel(mtbf)
    samples = model.sample_interarrivals(np.random.default_rng(seed), 64)
    assert np.all(samples > 0)
    assert np.all(np.isfinite(samples))


@settings(max_examples=30, deadline=None)
@given(mtbf=mtbfs, seed=seeds, shape=st.floats(min_value=0.3, max_value=3.0))
def test_weibull_and_lognormal_positive(mtbf, seed, shape):
    rng = np.random.default_rng(seed)
    for model in (WeibullFailureModel(mtbf, shape), LogNormalFailureModel(mtbf, shape)):
        samples = model.sample_interarrivals(rng, 32)
        assert np.all(samples > 0)


@settings(max_examples=50, deadline=None)
@given(mtbf=mtbfs, seed=seeds)
def test_timeline_is_strictly_increasing(mtbf, seed):
    timeline = FailureTimeline(
        ExponentialFailureModel(mtbf), np.random.default_rng(seed)
    )
    previous = 0.0
    for _ in range(20):
        nxt = timeline.next_failure_after(previous)
        assert nxt > previous
        previous = nxt


@settings(max_examples=50, deadline=None)
@given(
    interarrivals=st.lists(
        st.floats(min_value=1e-3, max_value=1e6), min_size=1, max_size=20
    ),
    seed=seeds,
)
def test_trace_model_replays_exactly(interarrivals, seed):
    model = TraceFailureModel(interarrivals, cycle=False)
    rng = np.random.default_rng(seed)
    replayed = [model.sample_interarrival(rng) for _ in range(len(interarrivals))]
    assert replayed == [float(value) for value in interarrivals]


@settings(max_examples=50, deadline=None)
@given(
    node_mtbf=st.floats(min_value=1.0, max_value=1e9),
    node_count=st.integers(min_value=1, max_value=10**7),
)
def test_platform_mtbf_scales_inversely(node_mtbf, node_count):
    aggregate = platform_mtbf(node_mtbf, node_count)
    assert aggregate <= node_mtbf
    assert aggregate * node_count == node_mtbf or abs(
        aggregate * node_count - node_mtbf
    ) < 1e-6 * node_mtbf
