"""Property-based tests of the shared utilities."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.waste import slowdown_to_waste, waste_from_times, waste_to_slowdown
from repro.utils.stats import RunningStatistics, summarize

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


@settings(max_examples=60, deadline=None)
@given(samples=st.lists(finite_floats, min_size=2, max_size=200))
def test_running_statistics_matches_numpy(samples):
    acc = RunningStatistics()
    acc.extend(samples)
    data = np.asarray(samples)
    assert np.isclose(acc.mean, data.mean(), rtol=1e-9, atol=1e-6)
    assert np.isclose(acc.variance, data.var(ddof=1), rtol=1e-6, atol=1e-6)
    assert acc.minimum == data.min()
    assert acc.maximum == data.max()


@settings(max_examples=60, deadline=None)
@given(
    samples=st.lists(finite_floats, min_size=2, max_size=100),
    split=st.integers(min_value=1, max_value=99),
)
def test_merge_is_order_independent(samples, split):
    split = min(split, len(samples) - 1)
    left, right = RunningStatistics(), RunningStatistics()
    left.extend(samples[:split])
    right.extend(samples[split:])
    merged = left.merge(right)
    reference = RunningStatistics()
    reference.extend(samples)
    assert np.isclose(merged.mean, reference.mean, rtol=1e-9, atol=1e-6)
    assert np.isclose(merged.variance, reference.variance, rtol=1e-6, atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(samples=st.lists(finite_floats, min_size=2, max_size=100))
def test_confidence_interval_brackets_mean(samples):
    summary = summarize(samples)
    assert summary.ci_low <= summary.mean <= summary.ci_high


@settings(max_examples=100, deadline=None)
@given(
    application=st.floats(min_value=1e-3, max_value=1e9),
    overhead=st.floats(min_value=0.0, max_value=1e9),
)
def test_waste_slowdown_roundtrip(application, overhead):
    final = application + overhead
    waste = waste_from_times(application, final)
    assert 0.0 <= waste < 1.0
    # Round-tripping through the slowdown must reproduce the waste exactly
    # (comparison in waste space: the slowdown itself loses precision when
    # the waste approaches 1).
    assert np.isclose(slowdown_to_waste(waste_to_slowdown(waste)), waste, rtol=1e-12)
    assert np.isclose(slowdown_to_waste(final / application), waste, rtol=1e-9, atol=1e-12)
