"""Property-based tests of the ABFT checksum encode/verify/recover cycle."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.abft import (
    encode_column_checksums,
    encode_row_checksums,
    generator_matrix,
    recover_blocks_in_column,
    recover_blocks_in_row,
    verify_column_checksums,
    verify_row_checksums,
)

block_sizes = st.integers(min_value=1, max_value=4)
block_counts = st.integers(min_value=2, max_value=6)
checksum_counts = st.integers(min_value=1, max_value=3)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=40, deadline=None)
@given(b=block_sizes, nb=block_counts, c=checksum_counts, seed=seeds)
def test_encoding_always_verifies(b, nb, c, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((3 * b, nb * b))
    generator = generator_matrix(nb, c)
    extended = encode_column_checksums(matrix, b, generator)
    assert verify_column_checksums(extended, b, generator) < 1e-9

    tall = rng.standard_normal((nb * b, 3 * b))
    extended_rows = encode_row_checksums(tall, b, generator)
    assert verify_row_checksums(extended_rows, b, generator) < 1e-9


@settings(max_examples=40, deadline=None)
@given(b=block_sizes, nb=block_counts, c=checksum_counts, seed=seeds, data=st.data())
def test_row_recovery_restores_any_erasure_within_budget(b, nb, c, seed, data):
    """Destroying up to ``c`` blocks of a block row is always repairable."""
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((b, nb * b))
    generator = generator_matrix(nb, c)
    extended = encode_column_checksums(matrix, b, generator)
    original = extended.copy()

    lost_count = data.draw(st.integers(min_value=1, max_value=min(c, nb)))
    lost = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=nb - 1),
                min_size=lost_count,
                max_size=lost_count,
                unique=True,
            )
        )
    )
    for j in lost:
        extended[:, j * b : (j + 1) * b] = 0.0
    recover_blocks_in_row(
        extended,
        slice(0, b),
        lost,
        block_size=b,
        generator=generator,
        participating_block_cols=range(nb),
        checksum_col_start=nb * b,
    )
    assert np.allclose(extended, original, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(b=block_sizes, nb=block_counts, c=checksum_counts, seed=seeds, data=st.data())
def test_column_recovery_restores_any_erasure_within_budget(b, nb, c, seed, data):
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((nb * b, b))
    generator = generator_matrix(nb, c)
    extended = encode_row_checksums(matrix, b, generator)
    original = extended.copy()

    lost_count = data.draw(st.integers(min_value=1, max_value=min(c, nb)))
    lost = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=nb - 1),
                min_size=lost_count,
                max_size=lost_count,
                unique=True,
            )
        )
    )
    for i in lost:
        extended[i * b : (i + 1) * b, :] = 0.0
    recover_blocks_in_column(
        extended,
        slice(0, b),
        lost,
        block_size=b,
        generator=generator,
        participating_block_rows=range(nb),
        checksum_row_start=nb * b,
    )
    assert np.allclose(extended, original, atol=1e-6)
