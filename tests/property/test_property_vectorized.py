"""Property test: event/vectorized bit-identity over random configurations.

The across-trials engine's contract is exact equality with the event walk on
every :class:`~repro.simulation.table.TrialTable` column, for every
``(protocol, failure law, period, seed)`` combination it supports --
including the ``max_slowdown`` truncation path and the degenerate regime
where the MTBF is below the downtime + recovery cost.  Hypothesis explores
that space; every assertion is exact ``==``, never approximate.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ApplicationWorkload, ResilienceParameters
from repro.campaign.executor import ShardedVectorizedExecutor
from repro.core.protocols import (
    AbftPeriodicCkptSimulator,
    AbftPeriodicCkptVectorized,
    BiPeriodicCkptSimulator,
    BiPeriodicCkptVectorized,
    NoFaultToleranceSimulator,
    NoFaultToleranceVectorized,
    PurePeriodicCkptSimulator,
    PurePeriodicCkptVectorized,
)
from repro.failures import (
    ExponentialFailureModel,
    LogNormalFailureModel,
    TraceFailureModel,
    WeibullFailureModel,
)
from repro.simulation.rng import RandomStreams
from repro.simulation.trace import CATEGORIES
from repro.utils import HOUR, MINUTE

PAIRS = {
    "NoFT": (NoFaultToleranceSimulator, NoFaultToleranceVectorized),
    "PurePeriodicCkpt": (PurePeriodicCkptSimulator, PurePeriodicCkptVectorized),
    "BiPeriodicCkpt": (BiPeriodicCkptSimulator, BiPeriodicCkptVectorized),
    "ABFT&PeriodicCkpt": (AbftPeriodicCkptSimulator, AbftPeriodicCkptVectorized),
}

LAW_MODELS = {
    "exponential": lambda mtbf: ExponentialFailureModel(mtbf),
    "weibull": lambda mtbf: WeibullFailureModel(mtbf, shape=0.7),
    "lognormal": lambda mtbf: LogNormalFailureModel(mtbf, sigma=1.0),
}

#: Downtime + recovery of the shared parameter bundle is 660 s: the 150 s
#: MTBF draw exercises the mtbf <= D + R degenerate regime, where runs only
#: end through the max_slowdown truncation cap.
MTBF_CHOICES = (150.0, 45 * MINUTE, 2 * HOUR)

RUNS = 4


def _parameters(mtbf: float) -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=mtbf,
        checkpoint=10 * MINUTE,
        recovery=1 * MINUTE,
        downtime=60.0,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )


def _period_kwargs(protocol: str, period: float | None) -> dict:
    if period is None or protocol == "NoFT":
        return {}
    if protocol == "PurePeriodicCkpt":
        return {"period": period}
    if protocol == "BiPeriodicCkpt":
        return {"general_period": period, "library_period": period}
    return {"general_period": period}


@settings(max_examples=30, deadline=None)
@given(
    protocol=st.sampled_from(sorted(PAIRS)),
    law=st.sampled_from(sorted(LAW_MODELS)),
    mtbf=st.sampled_from(MTBF_CHOICES),
    # None defers to the optimal-period formulas; 120 s sits below the
    # checkpoint cost, hitting the degenerate single-chunk path.
    period=st.sampled_from((None, 120.0, 1800.0, 5000.0)),
    alpha=st.sampled_from((0.0, 0.5, 0.8, 1.0)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_event_vectorized_bit_identity(protocol, law, mtbf, period, alpha, seed):
    parameters = _parameters(mtbf)
    workload = ApplicationWorkload.single_epoch(2 * HOUR, alpha, library_fraction=0.8)
    kwargs = _period_kwargs(protocol, period)
    model = LAW_MODELS[law](mtbf)
    # A low cap keeps the degenerate-MTBF walks affordable while exercising
    # the truncation path of both engines.
    event_cls, vectorized_cls = PAIRS[protocol]
    table = vectorized_cls(
        parameters, workload, failure_model=model, max_slowdown=4.0, **kwargs
    ).run_trials(RUNS, seed=seed)
    simulator = event_cls(
        parameters, workload, failure_model=model, max_slowdown=4.0, **kwargs
    )
    streams = RandomStreams(seed)
    for trial in range(RUNS):
        trace = simulator.simulate(streams.generator_for_trial(trial))
        row = table.data[trial]
        assert float(row["makespan"]) == trace.makespan, (protocol, law, trial)
        assert float(row["waste"]) == trace.waste, (protocol, law, trial)
        assert int(row["failure_count"]) == trace.failure_count
        assert bool(row["truncated"]) == trace.metadata["truncated"]
        for category in CATEGORIES:
            assert float(row[category]) == getattr(trace.breakdown, category), (
                protocol,
                law,
                trial,
                category,
            )


@settings(max_examples=10, deadline=None)
@given(
    protocol=st.sampled_from(("BiPeriodicCkpt", "ABFT&PeriodicCkpt")),
    epochs=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_multi_epoch_bit_identity(protocol, epochs, seed):
    """Per-epoch phase schedules stay identical for iterative workloads."""
    parameters = _parameters(2 * HOUR)
    workload = ApplicationWorkload.iterative(
        epochs, 1 * HOUR, 0.6, library_fraction=0.8
    )
    event_cls, vectorized_cls = PAIRS[protocol]
    table = vectorized_cls(parameters, workload).run_trials(RUNS, seed=seed)
    simulator = event_cls(parameters, workload)
    streams = RandomStreams(seed)
    for trial in range(RUNS):
        trace = simulator.simulate(streams.generator_for_trial(trial))
        row = table.data[trial]
        assert float(row["makespan"]) == trace.makespan, (protocol, trial)
        assert int(row["failure_count"]) == trace.failure_count
        for category in CATEGORIES:
            assert float(row[category]) == getattr(trace.breakdown, category)


#: Laws for the sharding property, including the stateful trace replay whose
#: per-trial cursors must survive arbitrary shard boundaries.  Interarrivals
#: scale with the MTBF draw so every regime sees a few failures.
SHARD_LAWS = dict(LAW_MODELS)
SHARD_LAWS["trace"] = lambda mtbf: TraceFailureModel(
    [0.6 * mtbf, 1.7 * mtbf, 0.35 * mtbf, 2.4 * mtbf, 1.1 * mtbf]
)

#: 9 trials shard unevenly under every worker count below: 7 workers yield
#: shards of 2 with a final shard of 1, 2 workers yield 5 + 4, etc.
SHARD_RUNS = 9


@settings(max_examples=20, deadline=None)
@given(
    protocol=st.sampled_from(sorted(PAIRS)),
    law=st.sampled_from(sorted(SHARD_LAWS)),
    mtbf=st.sampled_from(MTBF_CHOICES),
    period=st.sampled_from((None, 120.0, 1800.0)),
    seed=st.integers(min_value=0, max_value=2**16),
    workers=st.sampled_from((1, 2, 3, 7)),
)
def test_sharded_serial_event_bit_identity(protocol, law, mtbf, period, seed, workers):
    """Sharded == serial vectorized == event walk, for any worker count.

    The shard decomposition must be invisible: worker counts that split the
    campaign unevenly concatenate to the bit-identical serial table, and the
    trace law's per-trial cursors replay the same failures regardless of
    which shard owns a trial.  The 150 s MTBF draw and the 120 s period keep
    the truncation and degenerate single-chunk paths in scope.
    """
    parameters = _parameters(mtbf)
    workload = ApplicationWorkload.single_epoch(2 * HOUR, 0.8, library_fraction=0.8)
    kwargs = _period_kwargs(protocol, period)
    event_cls, vectorized_cls = PAIRS[protocol]
    engine = vectorized_cls(
        parameters,
        workload,
        failure_model=SHARD_LAWS[law](mtbf),
        max_slowdown=4.0,
        **kwargs,
    )
    serial = engine.run_trials(SHARD_RUNS, seed=seed)
    sharded = ShardedVectorizedExecutor(workers=workers, backend="serial").run(
        engine, runs=SHARD_RUNS, seed=seed
    )
    assert sharded == serial, (protocol, law, workers)
    simulator = event_cls(
        parameters,
        workload,
        failure_model=SHARD_LAWS[law](mtbf),
        max_slowdown=4.0,
        **kwargs,
    )
    streams = RandomStreams(seed)
    for trial in range(SHARD_RUNS):
        trace = simulator.simulate(streams.generator_for_trial(trial))
        row = sharded.data[trial]
        assert float(row["makespan"]) == trace.makespan, (protocol, law, trial)
        assert int(row["failure_count"]) == trace.failure_count
        assert bool(row["truncated"]) == trace.metadata["truncated"]
        for category in CATEGORIES:
            assert float(row[category]) == getattr(trace.breakdown, category)


@pytest.mark.parametrize("law", ("exponential", "trace"))
def test_sharded_process_pool_bit_identity(law):
    """The real process transport round-trips engines and tables losslessly."""
    parameters = _parameters(45 * MINUTE)
    workload = ApplicationWorkload.single_epoch(2 * HOUR, 0.8, library_fraction=0.8)
    engine = PurePeriodicCkptVectorized(
        parameters,
        workload,
        failure_model=SHARD_LAWS[law](45 * MINUTE),
        period=1800.0,
    )
    serial = engine.run_trials(7, seed=23)
    sharded = ShardedVectorizedExecutor(workers=3, backend="process").run(
        engine, runs=7, seed=23
    )
    assert sharded == serial


def test_rle_arrays_sized_by_unique_rounds():
    """A 1000-epoch identical-epoch schedule stores one epoch's rounds.

    The engine executes the *expanded* schedule (segment_count counts every
    repetition) but its per-round arrays are sized by the RLE-compressed
    unique rounds, so memory stays flat in the epoch count.
    """
    parameters = _parameters(2 * HOUR)
    workload = ApplicationWorkload.iterative(
        1000, 1 * HOUR, 0.6, library_fraction=0.8
    )
    adapter = BiPeriodicCkptVectorized(parameters, workload)
    engine = adapter._engine
    assert engine.segment_count >= 1000
    unique = engine.unique_round_count
    assert unique < engine.segment_count / 100  # compressed, not flattened
    for name in ("_kind", "_work", "_chunk", "_ckpt", "_duration", "_init_w"):
        assert len(getattr(engine, name)) == unique, name
    # And the compressed execution still matches the event walk.
    table = adapter.run_trials(2, seed=5)
    simulator = BiPeriodicCkptSimulator(parameters, workload)
    streams = RandomStreams(5)
    for trial in range(2):
        trace = simulator.simulate(streams.generator_for_trial(trial))
        assert float(table.data[trial]["makespan"]) == trace.makespan


@pytest.mark.parametrize("protocol", sorted(PAIRS))
def test_degenerate_mtbf_truncates_identically(protocol):
    """mtbf <= D + R: every trial ends through the cap, in both engines."""
    parameters = _parameters(150.0)
    workload = ApplicationWorkload.single_epoch(1 * HOUR, 0.8, library_fraction=0.8)
    event_cls, vectorized_cls = PAIRS[protocol]
    table = vectorized_cls(parameters, workload, max_slowdown=3.0).run_trials(
        6, seed=17
    )
    simulator = event_cls(parameters, workload, max_slowdown=3.0)
    streams = RandomStreams(17)
    truncated = 0
    for trial in range(6):
        trace = simulator.simulate(streams.generator_for_trial(trial))
        row = table.data[trial]
        assert bool(row["truncated"]) == trace.metadata["truncated"]
        assert float(row["makespan"]) == trace.makespan
        truncated += int(row["truncated"])
    assert truncated == 6  # the regime is hopeless by construction
