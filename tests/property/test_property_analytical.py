"""Property-based tests of the analytical models (hypothesis)."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro import ApplicationWorkload, ResilienceParameters
from repro.core.analytical import (
    AbftPeriodicCkptModel,
    BiPeriodicCkptModel,
    PurePeriodicCkptModel,
    paper_optimal_period,
    periodic_final_time,
)
from repro.utils import HOUR, MINUTE

# Parameter space roughly spanning "plausible HPC platforms": MTBF from 30
# minutes to 10 days, checkpoints from 10 seconds to 20 minutes.
mtbfs = st.floats(min_value=30 * MINUTE, max_value=240 * HOUR)
checkpoints = st.floats(min_value=10.0, max_value=20 * MINUTE)
alphas = st.floats(min_value=0.0, max_value=1.0)
rhos = st.floats(min_value=0.0, max_value=1.0)
durations = st.floats(min_value=1 * HOUR, max_value=2000 * HOUR)


def _params(mtbf: float, checkpoint: float, rho: float) -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=mtbf,
        checkpoint=checkpoint,
        recovery=checkpoint,
        downtime=60.0,
        library_fraction=rho,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )


@settings(max_examples=60, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints, alpha=alphas, rho=rhos, total=durations)
def test_waste_is_always_in_unit_interval(mtbf, checkpoint, alpha, rho, total):
    params = _params(mtbf, checkpoint, rho)
    workload = ApplicationWorkload.single_epoch(total, alpha, library_fraction=rho)
    for model_cls in (PurePeriodicCkptModel, BiPeriodicCkptModel, AbftPeriodicCkptModel):
        waste = model_cls(params).waste(workload)
        assert 0.0 <= waste <= 1.0


@settings(max_examples=60, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints, alpha=alphas, rho=rhos, total=durations)
def test_final_time_never_below_application_time(mtbf, checkpoint, alpha, rho, total):
    params = _params(mtbf, checkpoint, rho)
    workload = ApplicationWorkload.single_epoch(total, alpha, library_fraction=rho)
    for model_cls in (PurePeriodicCkptModel, BiPeriodicCkptModel, AbftPeriodicCkptModel):
        prediction = model_cls(params).evaluate(workload)
        assert prediction.final_time >= workload.total_time or not prediction.feasible


@settings(max_examples=60, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints, alpha=alphas, rho=rhos, total=durations)
def test_bi_periodic_never_worse_than_pure(mtbf, checkpoint, alpha, rho, total):
    """Incremental checkpoints (C_L <= C) can only help BiPeriodicCkpt."""
    params = _params(mtbf, checkpoint, rho)
    workload = ApplicationWorkload.single_epoch(total, alpha, library_fraction=rho)
    pure = PurePeriodicCkptModel(params).waste(workload)
    bi = BiPeriodicCkptModel(params).waste(workload)
    assert bi <= pure + 1e-9


@settings(max_examples=60, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints, rho=rhos, total=durations)
def test_pure_periodic_waste_monotone_in_mtbf(mtbf, checkpoint, rho, total):
    params = _params(mtbf, checkpoint, rho)
    workload = ApplicationWorkload.single_epoch(total, 0.5, library_fraction=rho)
    better = PurePeriodicCkptModel(params.with_mtbf(2 * mtbf)).waste(workload)
    worse = PurePeriodicCkptModel(params).waste(workload)
    assert better <= worse + 1e-9


@settings(max_examples=80, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints)
def test_paper_period_optimality(mtbf, checkpoint):
    """Equation 11 minimises the expected time among nearby periods."""
    downtime, recovery = 60.0, checkpoint
    period = paper_optimal_period(checkpoint, mtbf, downtime, recovery)
    if math.isnan(period):
        return
    work = 100 * HOUR
    best = periodic_final_time(work, checkpoint, mtbf, downtime, recovery, period)
    for factor in (0.5, 0.8, 1.25, 2.0):
        other = periodic_final_time(
            work, checkpoint, mtbf, downtime, recovery, period * factor
        )
        assert best <= other * (1 + 1e-9)


@settings(max_examples=60, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints, alpha=alphas, total=durations)
def test_composite_waste_monotone_in_phi(mtbf, checkpoint, alpha, total):
    params_low = ResilienceParameters.from_scalars(
        platform_mtbf=mtbf, checkpoint=checkpoint, abft_overhead=1.0
    )
    params_high = params_low.with_abft(abft_overhead=1.2)
    workload = ApplicationWorkload.single_epoch(total, alpha)
    low = AbftPeriodicCkptModel(params_low).waste(workload)
    high = AbftPeriodicCkptModel(params_high).waste(workload)
    assert low <= high + 1e-9
