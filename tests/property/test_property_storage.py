"""Property test: storage-stack protocols keep event/vectorized bit-identity.

The storage axis lowers every stack into effective scalar ``(C, R)`` inside
:class:`~repro.core.parameters.ResilienceParameters`, *before* either engine
sees the parameters -- so a protocol checkpointing on a multi-level or buddy
stack must stay bit-identical between the event walk, the serial vectorized
engine and the sharded executor at any worker count, exactly like the flat
scalar configurations of ``test_property_vectorized``.  Every assertion is
exact ``==``, never approximate.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ApplicationWorkload, ResilienceParameters
from repro.campaign.executor import ShardedVectorizedExecutor
from repro.checkpointing import (
    BuddyStorage,
    LocalStorage,
    MultiLevelStorage,
    RemoteFileSystemStorage,
    StorageStack,
)
from repro.core.protocols import (
    AbftPeriodicCkptSimulator,
    AbftPeriodicCkptVectorized,
    BiPeriodicCkptSimulator,
    BiPeriodicCkptVectorized,
    PurePeriodicCkptSimulator,
    PurePeriodicCkptVectorized,
)
from repro.failures import ExponentialFailureModel, WeibullFailureModel
from repro.simulation.rng import RandomStreams
from repro.simulation.trace import CATEGORIES
from repro.utils import GB, HOUR, MINUTE, TB

PAIRS = {
    "PurePeriodicCkpt": (PurePeriodicCkptSimulator, PurePeriodicCkptVectorized),
    "BiPeriodicCkpt": (BiPeriodicCkptSimulator, BiPeriodicCkptVectorized),
    "ABFT&PeriodicCkpt": (AbftPeriodicCkptSimulator, AbftPeriodicCkptVectorized),
}

LAW_MODELS = {
    "exponential": lambda mtbf: ExponentialFailureModel(mtbf),
    "weibull": lambda mtbf: WeibullFailureModel(mtbf, shape=0.7),
}

MTBF_CHOICES = (45 * MINUTE, 2 * HOUR, 8 * HOUR)

#: 9 trials shard unevenly under every worker count below (7 -> 2+...+1).
SHARD_RUNS = 9


def _multilevel_stack() -> StorageStack:
    storage = MultiLevelStorage(
        LocalStorage(node_write_bandwidth=5 * GB),
        RemoteFileSystemStorage(write_bandwidth=100 * GB),
        remote_fraction=0.25,
        remote_read_fraction=0.25,
    )
    return StorageStack(storage, data_bytes=64 * TB, node_count=1000)


def _buddy_stack() -> StorageStack:
    storage = BuddyStorage(
        link_bandwidth=10 * GB,
        fallback_storage=RemoteFileSystemStorage(write_bandwidth=100 * GB),
    )
    return StorageStack(storage, data_bytes=64 * TB, node_count=1000)


STACKS = {"multi-level": _multilevel_stack, "buddy": _buddy_stack}


def _storage_parameters(stack_name: str, mtbf: float) -> ResilienceParameters:
    return ResilienceParameters.from_storage(
        platform_mtbf=mtbf,
        storage=STACKS[stack_name](),
        downtime=60.0,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )


def _period_kwargs(protocol: str, period: float | None) -> dict:
    if period is None:
        return {}
    if protocol == "PurePeriodicCkpt":
        return {"period": period}
    if protocol == "BiPeriodicCkpt":
        return {"general_period": period, "library_period": period}
    return {"general_period": period}


@settings(max_examples=25, deadline=None)
@given(
    protocol=st.sampled_from(sorted(PAIRS)),
    stack_name=st.sampled_from(sorted(STACKS)),
    law=st.sampled_from(sorted(LAW_MODELS)),
    mtbf=st.sampled_from(MTBF_CHOICES),
    period=st.sampled_from((None, 1800.0, 5000.0)),
    seed=st.integers(min_value=0, max_value=2**16),
    workers=st.sampled_from((1, 2, 3, 7)),
)
def test_storage_stack_bit_identity(
    protocol, stack_name, law, mtbf, period, seed, workers
):
    """Event == serial vectorized == sharded, for storage-lowered parameters.

    The buddy stack's risk-weighted recovery makes the lowered ``R`` depend
    on the platform MTBF; the multi-level stack blends two media.  Either
    way the parameters both engines receive are the same scalars, so the
    identity contract must hold trial for trial and column for column.
    """
    parameters = _storage_parameters(stack_name, mtbf)
    assert parameters.storage is not None
    workload = ApplicationWorkload.single_epoch(2 * HOUR, 0.8, library_fraction=0.8)
    kwargs = _period_kwargs(protocol, period)
    event_cls, vectorized_cls = PAIRS[protocol]
    engine = vectorized_cls(
        parameters,
        workload,
        failure_model=LAW_MODELS[law](mtbf),
        max_slowdown=4.0,
        **kwargs,
    )
    serial = engine.run_trials(SHARD_RUNS, seed=seed)
    sharded = ShardedVectorizedExecutor(workers=workers, backend="serial").run(
        engine, runs=SHARD_RUNS, seed=seed
    )
    assert sharded == serial, (protocol, stack_name, law, workers)
    simulator = event_cls(
        parameters,
        workload,
        failure_model=LAW_MODELS[law](mtbf),
        max_slowdown=4.0,
        **kwargs,
    )
    streams = RandomStreams(seed)
    for trial in range(SHARD_RUNS):
        trace = simulator.simulate(streams.generator_for_trial(trial))
        row = sharded.data[trial]
        assert float(row["makespan"]) == trace.makespan, (protocol, stack_name, trial)
        assert float(row["waste"]) == trace.waste
        assert int(row["failure_count"]) == trace.failure_count
        assert bool(row["truncated"]) == trace.metadata["truncated"]
        for category in CATEGORIES:
            assert float(row[category]) == getattr(trace.breakdown, category), (
                protocol,
                stack_name,
                trial,
                category,
            )


@settings(max_examples=15, deadline=None)
@given(
    protocol=st.sampled_from(sorted(PAIRS)),
    stack_name=st.sampled_from(sorted(STACKS)),
    mtbf=st.sampled_from(MTBF_CHOICES),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_storage_kwarg_equals_lowered_scalars(protocol, stack_name, mtbf, seed):
    """``storage=`` on the simulator == flat scalar params at the lowered costs.

    Lowering is the single source of truth: handing the stack to the
    simulator must produce exactly the trials of a scalar parameter bundle
    built from the stack's own lowered ``(C, R)``.
    """
    parameters = _storage_parameters(stack_name, mtbf)
    flat = ResilienceParameters.from_scalars(
        platform_mtbf=mtbf,
        checkpoint=parameters.full_checkpoint,
        recovery=parameters.full_recovery,
        downtime=60.0,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )
    workload = ApplicationWorkload.single_epoch(2 * HOUR, 0.8, library_fraction=0.8)
    event_cls, _ = PAIRS[protocol]
    base = ResilienceParameters.from_scalars(
        platform_mtbf=mtbf,
        checkpoint=1.0,  # overwritten by the storage kwarg
        downtime=60.0,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )
    via_kwarg = event_cls(base, workload, storage=parameters.storage)
    via_scalars = event_cls(flat, workload)
    streams_a, streams_b = RandomStreams(seed), RandomStreams(seed)
    for trial in range(4):
        a = via_kwarg.simulate(streams_a.generator_for_trial(trial))
        b = via_scalars.simulate(streams_b.generator_for_trial(trial))
        assert a.makespan == b.makespan, (protocol, stack_name, trial)
        assert a.waste == b.waste


@pytest.mark.parametrize("stack_name", sorted(STACKS))
def test_storage_stack_process_pool_bit_identity(stack_name):
    """The process transport pickles storage-carrying parameters losslessly."""
    mtbf = 45 * MINUTE
    parameters = _storage_parameters(stack_name, mtbf)
    workload = ApplicationWorkload.single_epoch(2 * HOUR, 0.8, library_fraction=0.8)
    engine = PurePeriodicCkptVectorized(
        parameters,
        workload,
        failure_model=ExponentialFailureModel(mtbf),
        period=1800.0,
    )
    serial = engine.run_trials(7, seed=23)
    sharded = ShardedVectorizedExecutor(workers=3, backend="process").run(
        engine, runs=7, seed=23
    )
    assert sharded == serial
