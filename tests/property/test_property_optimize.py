"""Property tests: the numeric optimizer agrees with the closed forms.

Equation 11's ``P_opt = sqrt(2 C (mu - D - R))`` is the exact minimizer of
the Equation 10 waste, so over any parameter point where the closed form is
defined and the regime is feasible, the numeric search must land on it --
the acceptance bar is 0.1% relative error, asserted here across a
hypothesis-drawn platform range (and to a much tighter tolerance on the
waste itself, which is flat to first order around the optimum).
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings, strategies as st

from repro import ApplicationWorkload, ResilienceParameters
from repro.core.analytical.young_daly import paper_optimal_period
from repro.optimize import optimize_period
from repro.utils import HOUR, MINUTE

# Plausible HPC platforms: MTBF from 30 minutes to 10 days, checkpoints from
# 10 seconds to 20 minutes (same ranges as the analytical property suite).
mtbfs = st.floats(min_value=30 * MINUTE, max_value=240 * HOUR)
checkpoints = st.floats(min_value=10.0, max_value=20 * MINUTE)
alphas = st.floats(min_value=0.0, max_value=1.0)
durations = st.floats(min_value=10 * HOUR, max_value=2000 * HOUR)


def _params(mtbf: float, checkpoint: float) -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=mtbf,
        checkpoint=checkpoint,
        recovery=checkpoint,
        downtime=60.0,
        library_fraction=0.8,
    )


@settings(max_examples=40, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints, alpha=alphas, total=durations)
def test_pure_periodic_numeric_matches_eq11(mtbf, checkpoint, alpha, total):
    params = _params(mtbf, checkpoint)
    reference = paper_optimal_period(
        checkpoint, mtbf, params.downtime, params.full_recovery
    )
    # Only compare where the closed form exists and the optimum is interior
    # (a feasible basin strictly wider than the checkpoint cost).
    assume(not math.isnan(reference) and reference > checkpoint * 1.01)
    workload = ApplicationWorkload.single_epoch(total, alpha, library_fraction=0.8)
    optimum = optimize_period("PurePeriodicCkpt", params, workload)
    if not optimum.feasible:
        # Feasibility must then agree with the model at the closed form.
        from repro.core.registry import resolve_protocol

        model = resolve_protocol("PurePeriodicCkpt").model_cls(params)
        assert model.waste(workload) == 1.0
        return
    assert optimum.relative_error("period") < 1e-3
    # The waste at the numeric optimum can only match or beat Eq. 11's.
    from repro.core.registry import resolve_protocol

    closed_waste = (
        resolve_protocol("PurePeriodicCkpt")
        .model_cls(params, period=reference)
        .waste(workload)
    )
    assert optimum.waste <= closed_waste + 1e-12


@settings(max_examples=25, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints, alpha=alphas, total=durations)
def test_bi_periodic_numeric_matches_both_closed_forms(
    mtbf, checkpoint, alpha, total
):
    params = _params(mtbf, checkpoint)
    general = paper_optimal_period(
        checkpoint, mtbf, params.downtime, params.full_recovery
    )
    library = paper_optimal_period(
        params.library_checkpoint, mtbf, params.downtime, params.full_recovery
    )
    assume(not math.isnan(general) and general > checkpoint * 1.01)
    assume(library > params.library_checkpoint * 1.01)
    workload = ApplicationWorkload.single_epoch(total, alpha, library_fraction=0.8)
    optimum = optimize_period("BiPeriodicCkpt", params, workload)
    assume(optimum.feasible)
    # Each phase owns its period, so both must land on their closed forms --
    # provided the phase contributes meaningfully to the waste.  A phase of
    # near-zero duration (alpha ~ 0 or ~ 1) moves the objective by less than
    # float resolution, so its period is numerically unconstrained there.
    if workload.total_general_time > 0.01 * total:
        assert optimum.relative_error("general_period") < 1e-3
    if workload.total_library_time > 0.01 * total:
        assert optimum.relative_error("library_period") < 1e-3


@settings(max_examples=40, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints, total=durations)
def test_optimum_is_no_worse_than_any_probe(mtbf, checkpoint, total):
    """The numeric optimum is a minimum: probing around it cannot improve."""
    from repro.core.registry import resolve_protocol

    params = _params(mtbf, checkpoint)
    workload = ApplicationWorkload.single_epoch(total, 0.8, library_fraction=0.8)
    optimum = optimize_period("PurePeriodicCkpt", params, workload)
    assume(optimum.feasible)
    model_cls = resolve_protocol("PurePeriodicCkpt").model_cls
    for factor in (0.9, 0.99, 1.01, 1.1):
        probe = model_cls(params, period=optimum.period() * factor).waste(workload)
        assert optimum.waste <= probe + 1e-12
