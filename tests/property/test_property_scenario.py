"""Property tests: ScenarioSpec serialization round-trips exactly.

The scenario layer's contract is that a spec is a *value*: serializing to a
dict (or JSON text) and parsing it back yields an equal spec, for any valid
combination of protocols, failure law, platform scalars, workload shape and
sweep axes.  Equality here is dataclass equality over every section.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.scenario import ScenarioSpec

PROTOCOL_NAMES = [
    "PurePeriodicCkpt",
    "BiPeriodicCkpt",
    "ABFT&PeriodicCkpt",
    "NoFT",
    "pure",
    "bi",
    "abft",
]

finite = st.floats(
    min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False
)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def failure_sections(draw) -> dict:
    model = draw(st.sampled_from(["exponential", "weibull", "lognormal", "trace"]))
    if model == "weibull":
        params = {"shape": draw(st.floats(min_value=0.1, max_value=5.0))}
    elif model == "lognormal":
        params = {"sigma": draw(st.floats(min_value=0.1, max_value=3.0))}
    elif model == "trace":
        params = {
            "interarrivals": draw(
                st.lists(finite, min_size=1, max_size=5)
            ),
            "cycle": draw(st.booleans()),
        }
    else:
        params = {}
    return {"model": model, "params": params}


@st.composite
def scenario_dicts(draw) -> dict:
    data: dict = {
        "name": draw(st.text(min_size=1, max_size=20)),
        "protocols": draw(
            st.lists(st.sampled_from(PROTOCOL_NAMES), min_size=1, max_size=4)
        ),
        "platform": {
            "mtbf": draw(finite),
            "checkpoint": draw(finite),
            "recovery": draw(finite),
            "downtime": draw(st.floats(min_value=0.0, max_value=1e6)),
            "library_fraction": draw(fractions),
            "abft_overhead": draw(st.floats(min_value=1.0, max_value=3.0)),
            "abft_reconstruction": draw(st.floats(min_value=0.0, max_value=1e4)),
        },
        "workload": {
            "total_time": draw(finite),
            "alpha": draw(fractions),
            "epochs": draw(st.integers(min_value=1, max_value=100)),
        },
        "failures": draw(failure_sections()),
        "simulation": {
            "validate": draw(st.booleans()),
            "runs": draw(st.integers(min_value=1, max_value=10_000)),
            "seed": draw(st.integers(min_value=-(2**31), max_value=2**31)),
        },
    }
    if draw(st.booleans()):
        data["sweep"] = {
            "mtbf_values": draw(st.lists(finite, min_size=1, max_size=6)),
            "alpha_values": draw(st.lists(fractions, min_size=1, max_size=6)),
        }
    if draw(st.booleans()):
        data["model_params"] = {
            "ABFT&PeriodicCkpt": {
                "per_epoch": draw(st.booleans()),
                "safeguard": draw(st.booleans()),
            }
        }
    return data


@settings(max_examples=100, deadline=None)
@given(scenario_dicts())
def test_dict_round_trip_is_identity(data: dict) -> None:
    spec = ScenarioSpec.from_dict(data)
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


@settings(max_examples=50, deadline=None)
@given(scenario_dicts())
def test_json_round_trip_is_identity(data: dict) -> None:
    spec = ScenarioSpec.from_dict(data)
    assert ScenarioSpec.from_json(spec.to_json()) == spec


@settings(max_examples=50, deadline=None)
@given(scenario_dicts())
def test_to_dict_is_stable(data: dict) -> None:
    spec = ScenarioSpec.from_dict(data)
    assert spec.to_dict() == ScenarioSpec.from_dict(spec.to_dict()).to_dict()
