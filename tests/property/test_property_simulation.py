"""Property-based tests of the protocol simulators."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import ApplicationWorkload, ResilienceParameters
from repro.core.protocols import (
    AbftPeriodicCkptSimulator,
    BiPeriodicCkptSimulator,
    PurePeriodicCkptSimulator,
)
from repro.failures import FailureTimeline
from repro.utils import HOUR, MINUTE

mtbfs = st.floats(min_value=30 * MINUTE, max_value=100 * HOUR)
checkpoints = st.floats(min_value=30.0, max_value=15 * MINUTE)
alphas = st.floats(min_value=0.0, max_value=1.0)
totals = st.floats(min_value=2 * HOUR, max_value=100 * HOUR)
seeds = st.integers(min_value=0, max_value=2**31 - 1)

SIMULATORS = (
    PurePeriodicCkptSimulator,
    BiPeriodicCkptSimulator,
    AbftPeriodicCkptSimulator,
)


def _setup(mtbf, checkpoint, alpha, total):
    params = ResilienceParameters.from_scalars(
        platform_mtbf=mtbf,
        checkpoint=checkpoint,
        recovery=checkpoint,
        downtime=60.0,
        library_fraction=0.8,
    )
    workload = ApplicationWorkload.single_epoch(total, alpha, library_fraction=0.8)
    return params, workload


@settings(max_examples=30, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints, alpha=alphas, total=totals, seed=seeds)
def test_breakdown_always_sums_to_makespan(mtbf, checkpoint, alpha, total, seed):
    params, workload = _setup(mtbf, checkpoint, alpha, total)
    for simulator_cls in SIMULATORS:
        trace = simulator_cls(params, workload).simulate(
            rng=np.random.default_rng(seed)
        )
        assert np.isclose(trace.breakdown.total, trace.makespan, rtol=1e-8)
        assert 0.0 <= trace.waste <= 1.0


@settings(max_examples=30, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints, alpha=alphas, total=totals, seed=seeds)
def test_useful_work_is_conserved(mtbf, checkpoint, alpha, total, seed):
    """Whatever the failures, exactly T0 seconds of useful work get done."""
    params, workload = _setup(mtbf, checkpoint, alpha, total)
    for simulator_cls in SIMULATORS:
        trace = simulator_cls(params, workload).simulate(
            rng=np.random.default_rng(seed)
        )
        if trace.metadata.get("truncated"):
            continue
        assert np.isclose(trace.breakdown.useful_work, workload.total_time, rtol=1e-8)


@settings(max_examples=30, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints, alpha=alphas, total=totals)
def test_failure_free_run_has_no_failure_costs(mtbf, checkpoint, alpha, total):
    params, workload = _setup(mtbf, checkpoint, alpha, total)
    for simulator_cls in SIMULATORS:
        trace = simulator_cls(params, workload).simulate(
            timeline=FailureTimeline.from_times([])
        )
        assert trace.failure_count == 0
        assert trace.breakdown.lost_work == 0.0
        assert trace.breakdown.recovery == 0.0
        assert trace.breakdown.downtime == 0.0


@settings(max_examples=25, deadline=None)
@given(mtbf=mtbfs, checkpoint=checkpoints, alpha=alphas, total=totals, seed=seeds)
def test_simulation_is_deterministic_given_seed(mtbf, checkpoint, alpha, total, seed):
    params, workload = _setup(mtbf, checkpoint, alpha, total)
    simulator = AbftPeriodicCkptSimulator(params, workload)
    first = simulator.simulate(rng=np.random.default_rng(seed))
    second = simulator.simulate(rng=np.random.default_rng(seed))
    assert first.makespan == second.makespan
    assert first.failure_count == second.failure_count
