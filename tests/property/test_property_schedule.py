"""Property tests: the segment-schedule IR against the legacy event walks.

Every protocol now compiles to a :class:`~repro.simulation.schedule.Schedule`
that the :class:`~repro.simulation.schedule.ScheduleInterpreter` executes.
The contract is that compile + interpret reproduces the historical
hand-written ``_run`` walks IEEE-operation-for-operation: same makespan, same
failure count, same time breakdown, same truncation flag, same recorded
events.  The reference walks below are the pre-IR ``_run`` bodies verbatim,
rebuilt from the building-block helpers the base class still exposes;
Hypothesis then drives both implementations over random
``(protocol, law, period, seed)`` configurations and asserts exact ``==``
equality, never approximate.

The run-length compression of :class:`~repro.simulation.schedule.Schedule`
is covered too: expansion round-trips through ``from_segments`` /
``from_blocks``, and repeated epochs genuinely compress.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ApplicationWorkload, ResilienceParameters
from repro.core.protocols import (
    AbftPeriodicCkptSimulator,
    BiPeriodicCkptSimulator,
    NoFaultToleranceSimulator,
    PurePeriodicCkptSimulator,
    compile_abft_periodic_schedule,
    compile_bi_periodic_schedule,
    compile_no_ft_schedule,
    compile_pure_periodic_schedule,
)
from repro.failures import (
    ExponentialFailureModel,
    LogNormalFailureModel,
    WeibullFailureModel,
)
from repro.simulation.events import EventKind
from repro.simulation.rng import RandomStreams
from repro.simulation.schedule import (
    AtomicSegment,
    PeriodicSegment,
    Schedule,
    ScheduleRun,
    compile_schedule,
)
from repro.simulation.trace import CATEGORIES
from repro.utils import HOUR, MINUTE


# --------------------------------------------------------------------------- #
# Reference simulators: the pre-IR hand-written walks, verbatim.
# --------------------------------------------------------------------------- #
class LegacyNoFT(NoFaultToleranceSimulator):
    def _run(self, timeline, recorder):
        work = self._workload.total_time
        time = 0.0
        while True:
            self._check_cap(time)
            next_failure = timeline.next_failure_after(time)
            if next_failure >= time + work:
                recorder.account("useful_work", work)
                return time + work
            elapsed = next_failure - time
            recorder.account("lost_work", elapsed)
            recorder.record(next_failure, EventKind.FAILURE, during="no-ft")
            time = self._restart(
                next_failure,
                timeline,
                recorder,
                (("downtime", self._params.downtime),),
            )


class LegacyPurePeriodic(PurePeriodicCkptSimulator):
    def _run(self, timeline, recorder):
        params = self._params
        return self._periodic_section(
            0.0,
            self._workload.total_time,
            timeline,
            recorder,
            checkpoint_cost=params.full_checkpoint,
            recovery_cost=params.full_recovery,
            period=self.period(),
            trailing_checkpoint=False,
        )


class LegacyBiPeriodic(BiPeriodicCkptSimulator):
    def _run(self, timeline, recorder):
        params = self._params
        phases = self._workload.phase_sequence()
        time = 0.0
        for index, (kind, duration, _abft_capable) in enumerate(phases):
            is_last = index == len(phases) - 1
            if kind == "general":
                recorder.record(time, EventKind.GENERAL_PHASE_START)
                time = self._periodic_section(
                    time,
                    duration,
                    timeline,
                    recorder,
                    checkpoint_cost=params.full_checkpoint,
                    recovery_cost=params.full_recovery,
                    period=self.general_period(),
                    trailing_checkpoint=not is_last,
                )
                recorder.record(time, EventKind.GENERAL_PHASE_END)
            else:
                recorder.record(time, EventKind.LIBRARY_PHASE_START)
                time = self._periodic_section(
                    time,
                    duration,
                    timeline,
                    recorder,
                    checkpoint_cost=params.library_checkpoint,
                    recovery_cost=params.full_recovery,
                    period=self.library_period(),
                    trailing_checkpoint=not is_last,
                )
                recorder.record(time, EventKind.LIBRARY_PHASE_END)
        return time


class LegacyAbftPeriodic(AbftPeriodicCkptSimulator):
    def _run(self, timeline, recorder):
        params = self._params
        time = 0.0
        general_period = self.general_period()
        for epoch in self._workload.epochs:
            recorder.record(time, EventKind.GENERAL_PHASE_START)
            general_time = epoch.general_time
            use_periodic = (
                not math.isnan(general_period) and general_time >= general_period
            )
            if use_periodic:
                time = self._periodic_section(
                    time,
                    general_time,
                    timeline,
                    recorder,
                    checkpoint_cost=params.full_checkpoint,
                    recovery_cost=params.full_recovery,
                    period=general_period,
                    trailing_checkpoint=True,
                )
            else:
                time = self._unprotected_section(
                    time,
                    general_time,
                    timeline,
                    recorder,
                    recovery_cost=params.full_recovery,
                    checkpoint_cost=params.remainder_checkpoint,
                )
            recorder.record(time, EventKind.GENERAL_PHASE_END)

            if epoch.library_time <= 0.0:
                continue
            if self._library_uses_abft(epoch):
                time = self._abft_section(
                    time,
                    epoch.library_time,
                    timeline,
                    recorder,
                    exit_checkpoint_cost=params.library_checkpoint,
                )
            else:
                recorder.record(time, EventKind.LIBRARY_PHASE_START)
                time = self._periodic_section(
                    time,
                    epoch.library_time,
                    timeline,
                    recorder,
                    checkpoint_cost=params.library_checkpoint,
                    recovery_cost=params.full_recovery,
                    period=self.library_fallback_period(),
                    trailing_checkpoint=True,
                )
                recorder.record(time, EventKind.LIBRARY_PHASE_END)
        return time


PAIRS = {
    "NoFT": (NoFaultToleranceSimulator, LegacyNoFT),
    "PurePeriodicCkpt": (PurePeriodicCkptSimulator, LegacyPurePeriodic),
    "BiPeriodicCkpt": (BiPeriodicCkptSimulator, LegacyBiPeriodic),
    "ABFT&PeriodicCkpt": (AbftPeriodicCkptSimulator, LegacyAbftPeriodic),
}

LAW_MODELS = {
    "exponential": lambda mtbf: ExponentialFailureModel(mtbf),
    "weibull": lambda mtbf: WeibullFailureModel(mtbf, shape=0.7),
    "lognormal": lambda mtbf: LogNormalFailureModel(mtbf, sigma=1.0),
}

MTBF_CHOICES = (150.0, 45 * MINUTE, 2 * HOUR)

RUNS = 3


def _event_keys(trace):
    """Recorded events minus the process-global ``sequence`` tiebreaker."""
    return [(event.time, event.kind, dict(event.payload)) for event in trace.events]


def _parameters(mtbf: float) -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=mtbf,
        checkpoint=10 * MINUTE,
        recovery=1 * MINUTE,
        downtime=60.0,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )


def _period_kwargs(protocol: str, period: float | None) -> dict:
    if period is None or protocol == "NoFT":
        return {}
    if protocol == "PurePeriodicCkpt":
        return {"period": period}
    if protocol == "BiPeriodicCkpt":
        return {"general_period": period, "library_period": period}
    return {"general_period": period}


@settings(max_examples=30, deadline=None)
@given(
    protocol=st.sampled_from(sorted(PAIRS)),
    law=st.sampled_from(sorted(LAW_MODELS)),
    mtbf=st.sampled_from(MTBF_CHOICES),
    period=st.sampled_from((None, 120.0, 1800.0, 5000.0)),
    alpha=st.sampled_from((0.0, 0.5, 0.8, 1.0)),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_interpreter_matches_legacy_walk(protocol, law, mtbf, period, alpha, seed):
    """compile + interpret == the hand-written walk, event for event."""
    parameters = _parameters(mtbf)
    workload = ApplicationWorkload.single_epoch(2 * HOUR, alpha, library_fraction=0.8)
    kwargs = _period_kwargs(protocol, period)
    schedule_cls, legacy_cls = PAIRS[protocol]
    common = dict(
        failure_model=LAW_MODELS[law](mtbf),
        record_events=True,
        max_slowdown=4.0,
    )
    compiled = schedule_cls(parameters, workload, **common, **kwargs)
    legacy = legacy_cls(parameters, workload, **common, **kwargs)
    for trial in range(RUNS):
        got = compiled.simulate(RandomStreams(seed).generator_for_trial(trial))
        want = legacy.simulate(RandomStreams(seed).generator_for_trial(trial))
        context = (protocol, law, trial)
        assert got.makespan == want.makespan, context
        assert got.failure_count == want.failure_count, context
        assert got.metadata["truncated"] == want.metadata["truncated"], context
        for category in CATEGORIES:
            assert getattr(got.breakdown, category) == getattr(
                want.breakdown, category
            ), (*context, category)
        assert _event_keys(got) == _event_keys(want), context


@settings(max_examples=15, deadline=None)
@given(
    protocol=st.sampled_from(("BiPeriodicCkpt", "ABFT&PeriodicCkpt")),
    epochs=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_multi_epoch_interpreter_matches_legacy_walk(protocol, epochs, seed):
    """Compressed repeated-epoch schedules still replay the legacy walk."""
    parameters = _parameters(2 * HOUR)
    workload = ApplicationWorkload.iterative(
        epochs, 1 * HOUR, 0.6, library_fraction=0.8
    )
    schedule_cls, legacy_cls = PAIRS[protocol]
    compiled = schedule_cls(parameters, workload, record_events=True)
    legacy = legacy_cls(parameters, workload, record_events=True)
    for trial in range(RUNS):
        got = compiled.simulate(RandomStreams(seed).generator_for_trial(trial))
        want = legacy.simulate(RandomStreams(seed).generator_for_trial(trial))
        assert got.makespan == want.makespan, (protocol, trial)
        assert got.failure_count == want.failure_count, (protocol, trial)
        for category in CATEGORIES:
            assert getattr(got.breakdown, category) == getattr(
                want.breakdown, category
            )
        assert _event_keys(got) == _event_keys(want), (protocol, trial)


# --------------------------------------------------------------------------- #
# The IR itself: run-length compression and the registry front door.
# --------------------------------------------------------------------------- #
def _segment(work: float) -> AtomicSegment:
    return AtomicSegment(work=work, checkpoint_cost=0.0, stages=())


@given(
    works=st.lists(
        st.sampled_from((1.0, 2.0, 3.0)), min_size=0, max_size=30
    )
)
def test_from_segments_round_trips(works):
    """RLE compression expands back to the exact segment sequence."""
    segments = [_segment(w) for w in works]
    schedule = Schedule.from_segments(segments)
    assert list(schedule) == segments
    assert len(schedule) == len(segments)
    assert schedule.run_count <= max(1, len(segments)) if segments else True


@given(
    blocks=st.lists(
        st.lists(st.sampled_from((1.0, 2.0)), min_size=0, max_size=3),
        min_size=0,
        max_size=10,
    )
)
def test_from_blocks_round_trips(blocks):
    """Per-block RLE expands to the concatenation of the non-empty blocks."""
    built = [[_segment(w) for w in block] for block in blocks]
    schedule = Schedule.from_blocks(built)
    flat = [segment for block in built for segment in block]
    assert list(schedule) == flat
    assert len(schedule) == len(flat)


def test_repeated_epochs_compress():
    """A weak-scaling workload's identical epochs cost one repeated run."""
    parameters = _parameters(2 * HOUR)
    workload = ApplicationWorkload.iterative(8, 1 * HOUR, 0.6, library_fraction=0.8)
    schedule = compile_bi_periodic_schedule(parameters, workload)
    # 8 epochs x 2 phases expand to 16 segments, but only the last epoch
    # differs (no trailing checkpoint), so at most 3 runs are stored.
    assert schedule.segment_count == 16
    assert schedule.run_count <= 3
    expanded = list(schedule)
    assert len(expanded) == 16
    assert all(isinstance(seg, PeriodicSegment) for seg in expanded)


def test_schedule_run_validates_count():
    with pytest.raises((ValueError, TypeError)):
        ScheduleRun(segments=(_segment(1.0),), count=0)


@pytest.mark.parametrize(
    "name, compiler",
    [
        ("NoFT", compile_no_ft_schedule),
        ("PurePeriodicCkpt", compile_pure_periodic_schedule),
        ("BiPeriodicCkpt", compile_bi_periodic_schedule),
        ("ABFT&PeriodicCkpt", compile_abft_periodic_schedule),
    ],
)
def test_registry_front_door_matches_module_compilers(name, compiler):
    """compile_schedule(name, ...) resolves to the registered compiler."""
    parameters = _parameters(2 * HOUR)
    workload = ApplicationWorkload.single_epoch(2 * HOUR, 0.8, library_fraction=0.8)
    assert compile_schedule(name, parameters, workload) == compiler(
        parameters, workload
    )


def test_registry_front_door_rejects_unregistered():
    with pytest.raises(Exception):
        compile_schedule("NoSuchProtocol", None, None)
