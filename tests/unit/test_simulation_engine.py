"""Unit tests for the generic discrete-event engine."""

from __future__ import annotations

import pytest

from repro.simulation import Event, EventKind, SimulationEngine, SimulationError


class TestScheduling:
    def test_events_dispatch_in_time_order(self):
        engine = SimulationEngine()
        seen = []
        engine.subscribe_all(lambda eng, ev: seen.append(ev.time))
        engine.schedule(5.0, EventKind.FAILURE)
        engine.schedule(2.0, EventKind.FAILURE)
        engine.schedule(9.0, EventKind.CUSTOM)
        engine.run()
        assert seen == [2.0, 5.0, 9.0]

    def test_equal_times_keep_insertion_order(self):
        engine = SimulationEngine()
        seen = []
        engine.subscribe_all(lambda eng, ev: seen.append(ev.payload["tag"]))
        engine.schedule(1.0, EventKind.CUSTOM, {"tag": "a"})
        engine.schedule(1.0, EventKind.CUSTOM, {"tag": "b"})
        engine.run()
        assert seen == ["a", "b"]

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule(1.0, EventKind.CUSTOM)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(0.5, EventKind.CUSTOM)

    def test_schedule_after(self):
        engine = SimulationEngine(start_time=10.0)
        event = engine.schedule_after(5.0, EventKind.CUSTOM)
        assert event.time == 15.0
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, EventKind.CUSTOM)

    def test_schedule_events_bulk(self):
        engine = SimulationEngine()
        events = [Event(time=float(t), kind=EventKind.FAILURE) for t in (3, 1, 2)]
        engine.schedule_events(events)
        engine.run()
        assert engine.processed == 3
        assert engine.now == 3.0


class TestHandlers:
    def test_kind_specific_handler(self):
        engine = SimulationEngine()
        failures = []
        engine.subscribe(EventKind.FAILURE, lambda eng, ev: failures.append(ev.time))
        engine.schedule(1.0, EventKind.FAILURE)
        engine.schedule(2.0, EventKind.CUSTOM)
        engine.run()
        assert failures == [1.0]

    def test_handler_can_schedule_more_events(self):
        engine = SimulationEngine()
        count = {"n": 0}

        def chain(eng, event):
            count["n"] += 1
            if count["n"] < 5:
                eng.schedule_after(1.0, EventKind.CUSTOM)

        engine.subscribe(EventKind.CUSTOM, chain)
        engine.schedule(0.0, EventKind.CUSTOM)
        engine.run()
        assert count["n"] == 5
        assert engine.now == 4.0

    def test_stop_from_handler(self):
        engine = SimulationEngine()
        engine.subscribe(EventKind.CUSTOM, lambda eng, ev: eng.stop())
        engine.schedule(1.0, EventKind.CUSTOM)
        engine.schedule(2.0, EventKind.CUSTOM)
        engine.run()
        assert engine.processed == 1
        assert engine.pending == 1


class TestRunControl:
    def test_run_until(self):
        engine = SimulationEngine()
        engine.schedule(1.0, EventKind.CUSTOM)
        engine.schedule(10.0, EventKind.CUSTOM)
        engine.run(until=5.0)
        assert engine.processed == 1
        assert engine.now == 5.0

    def test_max_events_guard(self):
        engine = SimulationEngine()

        def forever(eng, event):
            eng.schedule_after(1.0, EventKind.CUSTOM)

        engine.subscribe(EventKind.CUSTOM, forever)
        engine.schedule(0.0, EventKind.CUSTOM)
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(max_events=50)

    def test_advance_to(self):
        engine = SimulationEngine()
        engine.advance_to(42.0)
        assert engine.now == 42.0
        with pytest.raises(SimulationError):
            engine.advance_to(10.0)

    def test_step_on_empty_queue(self):
        assert SimulationEngine().step() is None

    def test_negative_start_time_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine(start_time=-1.0)


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(time=-1.0, kind=EventKind.FAILURE)

    def test_with_payload(self):
        event = Event(time=1.0, kind=EventKind.FAILURE, payload={"a": 1})
        updated = event.with_payload(b=2)
        assert updated.payload == {"a": 1, "b": 2}
        assert event.payload == {"a": 1}

    def test_str_contains_kind(self):
        assert "failure" in str(Event(time=1.0, kind=EventKind.FAILURE))
