"""Unit tests for the erasure-recovery primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft import (
    RecoveryError,
    encode_column_checksums,
    encode_row_checksums,
    generator_matrix,
    recover_blocks_in_column,
    recover_blocks_in_row,
)


class TestRecoverBlocksInRow:
    def test_single_erasure(self, rng):
        block = 2
        matrix = rng.standard_normal((2, 8))
        generator = generator_matrix(4, 1)
        extended = encode_column_checksums(matrix, block, generator)
        original = extended.copy()
        extended[:, 2:4] = 0.0  # destroy block column 1 of this block row
        recover_blocks_in_row(
            extended,
            slice(0, 2),
            [1],
            block_size=block,
            generator=generator,
            participating_block_cols=range(4),
            checksum_col_start=8,
        )
        assert np.allclose(extended, original)

    def test_double_erasure_needs_two_checksums(self, rng):
        block = 2
        matrix = rng.standard_normal((2, 8))
        generator = generator_matrix(4, 2)
        extended = encode_column_checksums(matrix, block, generator)
        original = extended.copy()
        extended[:, 0:2] = 0.0
        extended[:, 4:6] = 0.0
        recover_blocks_in_row(
            extended,
            slice(0, 2),
            [0, 2],
            block_size=block,
            generator=generator,
            participating_block_cols=range(4),
            checksum_col_start=8,
        )
        assert np.allclose(extended, original)

    def test_too_many_erasures_raise(self, rng):
        block = 2
        matrix = rng.standard_normal((2, 8))
        generator = generator_matrix(4, 1)
        extended = encode_column_checksums(matrix, block, generator)
        with pytest.raises(RecoveryError):
            recover_blocks_in_row(
                extended,
                slice(0, 2),
                [0, 1],
                block_size=block,
                generator=generator,
                participating_block_cols=range(4),
                checksum_col_start=8,
            )

    def test_lost_outside_participating_raises(self, rng):
        block = 2
        matrix = rng.standard_normal((2, 8))
        generator = generator_matrix(4, 1)
        extended = encode_column_checksums(matrix, block, generator)
        with pytest.raises(RecoveryError):
            recover_blocks_in_row(
                extended,
                slice(0, 2),
                [0],
                block_size=block,
                generator=generator,
                participating_block_cols=[1, 2, 3],
                checksum_col_start=8,
            )

    def test_empty_lost_list_is_noop(self, rng):
        block = 2
        matrix = rng.standard_normal((2, 8))
        generator = generator_matrix(4, 1)
        extended = encode_column_checksums(matrix, block, generator)
        original = extended.copy()
        recover_blocks_in_row(
            extended,
            slice(0, 2),
            [],
            block_size=block,
            generator=generator,
            participating_block_cols=range(4),
            checksum_col_start=8,
        )
        assert np.array_equal(extended, original)


class TestRecoverBlocksInColumn:
    def test_single_erasure(self, rng):
        block = 2
        matrix = rng.standard_normal((8, 2))
        generator = generator_matrix(4, 1)
        extended = encode_row_checksums(matrix, block, generator)
        original = extended.copy()
        extended[4:6, :] = 0.0
        recover_blocks_in_column(
            extended,
            slice(0, 2),
            [2],
            block_size=block,
            generator=generator,
            participating_block_rows=range(4),
            checksum_row_start=8,
        )
        assert np.allclose(extended, original)

    def test_restricted_participation(self, rng):
        """Recovery with a participating subset mimics mid-factorization state."""
        block = 2
        matrix = rng.standard_normal((8, 2))
        generator = generator_matrix(4, 2)
        extended = encode_row_checksums(matrix, block, generator)
        # Make block rows 0..1 "already eliminated": zero them and subtract
        # their contribution from the checksum rows so the invariant now only
        # involves rows 2..3.
        for i in (0, 1):
            for r in range(2):
                extended[8 + 2 * r : 10 + 2 * r, :] -= (
                    generator[r, i] * extended[2 * i : 2 * i + 2, :]
                )
            extended[2 * i : 2 * i + 2, :] = 0.0
        original = extended.copy()
        extended[6:8, :] = 0.0  # lose block row 3
        recover_blocks_in_column(
            extended,
            slice(0, 2),
            [3],
            block_size=block,
            generator=generator,
            participating_block_rows=[2, 3],
            checksum_row_start=8,
        )
        assert np.allclose(extended, original)
