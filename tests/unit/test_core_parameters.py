"""Unit tests for the resilience parameter bundle."""

from __future__ import annotations

import pytest

from repro.core import ResilienceParameters
from repro.utils import MINUTE


class TestResilienceParameters:
    def test_paper_notation_accessors(self, paper_parameters):
        params = paper_parameters
        assert params.mtbf == 120 * MINUTE
        assert params.full_checkpoint == 10 * MINUTE
        assert params.full_recovery == 10 * MINUTE
        assert params.downtime == 1 * MINUTE
        assert params.rho == 0.8
        assert params.phi == 1.03
        assert params.library_checkpoint == pytest.approx(0.8 * 10 * MINUTE)
        assert params.remainder_checkpoint == pytest.approx(0.2 * 10 * MINUTE)

    def test_abft_failure_cost(self, paper_parameters):
        expected = 60.0 + 0.2 * 600.0 + 2.0
        assert paper_parameters.abft_failure_cost == pytest.approx(expected)

    def test_rollback_failure_overhead(self, paper_parameters):
        assert paper_parameters.rollback_failure_overhead == pytest.approx(660.0)

    def test_remainder_recovery_override(self):
        params = ResilienceParameters.from_scalars(
            platform_mtbf=3600.0, checkpoint=60.0, remainder_recovery=7.0
        )
        assert params.remainder_recovery_cost == 7.0

    def test_with_mtbf(self, paper_parameters):
        assert paper_parameters.with_mtbf(60.0).mtbf == 60.0
        # Original untouched (frozen dataclass).
        assert paper_parameters.mtbf == 120 * MINUTE

    def test_with_abft(self, paper_parameters):
        updated = paper_parameters.with_abft(abft_overhead=1.1)
        assert updated.phi == 1.1
        assert updated.abft_reconstruction == paper_parameters.abft_reconstruction

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceParameters.from_scalars(platform_mtbf=-1.0, checkpoint=1.0)
        with pytest.raises(ValueError):
            ResilienceParameters.from_scalars(
                platform_mtbf=1.0, checkpoint=1.0, abft_overhead=0.5
            )
