"""Unit tests for the closed-form protocol models (Section IV)."""

from __future__ import annotations

import math

import pytest

from repro import ApplicationWorkload
from repro.core.analytical import (
    AbftPeriodicCkptModel,
    BiPeriodicCkptModel,
    NoFaultToleranceModel,
    PurePeriodicCkptModel,
)
from repro.utils import MINUTE, WEEK


class TestPurePeriodicCkptModel:
    def test_matches_hand_computed_figure7_value(self, paper_workload):
        # mu = 60 min: P = sqrt(2*10*(60-11)) min, waste = 1 - X ~ 0.622.
        from repro.core import ResilienceParameters

        params = ResilienceParameters.from_scalars(
            platform_mtbf=60 * MINUTE,
            checkpoint=10 * MINUTE,
            recovery=10 * MINUTE,
            downtime=1 * MINUTE,
        )
        waste = PurePeriodicCkptModel(params).waste(paper_workload)
        assert waste == pytest.approx(0.622, abs=0.002)

    def test_waste_independent_of_alpha(self, paper_parameters):
        model = PurePeriodicCkptModel(paper_parameters)
        wastes = {
            alpha: model.waste(ApplicationWorkload.single_epoch(1 * WEEK, alpha))
            for alpha in (0.0, 0.3, 0.8, 1.0)
        }
        assert max(wastes.values()) == pytest.approx(min(wastes.values()))

    def test_waste_decreases_with_mtbf(self, paper_parameters, paper_workload):
        low = PurePeriodicCkptModel(paper_parameters.with_mtbf(60 * MINUTE))
        high = PurePeriodicCkptModel(paper_parameters.with_mtbf(240 * MINUTE))
        assert high.waste(paper_workload) < low.waste(paper_workload)

    def test_explicit_period_override(self, paper_parameters, paper_workload):
        optimal = PurePeriodicCkptModel(paper_parameters)
        forced = PurePeriodicCkptModel(paper_parameters, period=4 * optimal.period())
        assert forced.waste(paper_workload) > optimal.waste(paper_workload)

    def test_young_daly_formulas_close_to_paper(self, paper_parameters, paper_workload):
        paper = PurePeriodicCkptModel(paper_parameters).waste(paper_workload)
        young = PurePeriodicCkptModel(paper_parameters, period_formula="young").waste(
            paper_workload
        )
        daly = PurePeriodicCkptModel(paper_parameters, period_formula="daly").waste(
            paper_workload
        )
        assert young == pytest.approx(paper, abs=0.02)
        assert daly == pytest.approx(paper, abs=0.02)

    def test_prediction_fields(self, paper_parameters, paper_workload):
        prediction = PurePeriodicCkptModel(paper_parameters).evaluate(paper_workload)
        assert prediction.protocol == "PurePeriodicCkpt"
        assert prediction.final_time > prediction.application_time
        assert prediction.expected_failures == pytest.approx(
            prediction.final_time / paper_parameters.mtbf
        )
        assert prediction.feasible
        assert "period" in prediction.details

    def test_infeasible_regime(self, paper_parameters, paper_workload):
        params = paper_parameters.with_mtbf(5 * MINUTE)  # C = 10 min > mu
        prediction = PurePeriodicCkptModel(params).evaluate(paper_workload)
        assert not prediction.feasible
        assert prediction.waste == 1.0


class TestBiPeriodicCkptModel:
    def test_reduces_to_pure_when_alpha_zero(self, paper_parameters):
        workload = ApplicationWorkload.single_epoch(1 * WEEK, 0.0)
        pure = PurePeriodicCkptModel(paper_parameters).waste(workload)
        bi = BiPeriodicCkptModel(paper_parameters).waste(workload)
        assert bi == pytest.approx(pure)

    def test_cheaper_than_pure_for_positive_alpha(self, paper_parameters, paper_workload):
        pure = PurePeriodicCkptModel(paper_parameters).waste(paper_workload)
        bi = BiPeriodicCkptModel(paper_parameters).waste(paper_workload)
        assert bi < pure

    def test_waste_decreases_with_alpha(self, paper_parameters):
        model = BiPeriodicCkptModel(paper_parameters)
        wastes = [
            model.waste(ApplicationWorkload.single_epoch(1 * WEEK, alpha))
            for alpha in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert all(a > b for a, b in zip(wastes, wastes[1:]))

    def test_library_period_uses_equation_14(self, paper_parameters):
        model = BiPeriodicCkptModel(paper_parameters)
        expected = math.sqrt(
            2
            * paper_parameters.library_checkpoint
            * (paper_parameters.mtbf - paper_parameters.downtime - paper_parameters.full_recovery)
        )
        assert model.library_period() == pytest.approx(expected)

    def test_details_contain_per_phase_times(self, paper_parameters, paper_workload):
        details = BiPeriodicCkptModel(paper_parameters).evaluate(paper_workload).details
        assert details["general_final_time"] > 0
        assert details["library_final_time"] > 0


class TestAbftPeriodicCkptModel:
    def test_reduces_to_pure_when_alpha_zero(self, paper_parameters):
        workload = ApplicationWorkload.single_epoch(1 * WEEK, 0.0)
        pure = PurePeriodicCkptModel(paper_parameters).waste(workload)
        composite = AbftPeriodicCkptModel(paper_parameters).waste(workload)
        # The composite adds a final partial checkpoint of the REMAINDER
        # dataset, negligible relative to a one-week epoch.
        assert composite == pytest.approx(pure, abs=0.002)

    def test_alpha_one_waste_tends_to_phi_overhead(self, paper_parameters):
        workload = ApplicationWorkload.single_epoch(1 * WEEK, 1.0)
        params = paper_parameters.with_mtbf(240 * MINUTE)
        waste = AbftPeriodicCkptModel(params).waste(workload)
        # Paper: "the overhead tends to reach ... (phi = 1.03, hence 3% overhead)"
        assert 0.029 < waste < 0.06

    def test_beats_both_periodic_protocols_at_high_alpha(self, paper_parameters, paper_workload):
        composite = AbftPeriodicCkptModel(paper_parameters).waste(paper_workload)
        pure = PurePeriodicCkptModel(paper_parameters).waste(paper_workload)
        bi = BiPeriodicCkptModel(paper_parameters).waste(paper_workload)
        assert composite < bi < pure

    def test_waste_decreases_with_alpha(self, paper_parameters):
        model = AbftPeriodicCkptModel(paper_parameters)
        wastes = [
            model.waste(ApplicationWorkload.single_epoch(1 * WEEK, alpha))
            for alpha in (0.0, 0.5, 1.0)
        ]
        assert wastes[0] > wastes[1] > wastes[2]

    def test_safeguard_falls_back_for_tiny_library_phase(self, paper_parameters):
        # A library phase far shorter than the optimal checkpoint interval.
        workload = ApplicationWorkload.iterative(100, 10 * MINUTE, 0.05)
        guarded = AbftPeriodicCkptModel(paper_parameters, safeguard=True)
        unguarded = AbftPeriodicCkptModel(paper_parameters, safeguard=False)
        assert guarded.waste(workload) <= unguarded.waste(workload)
        details = guarded.evaluate(workload).details
        assert details["epochs_with_abft"] == 0

    def test_non_abft_capable_phase_uses_checkpointing(self, paper_parameters):
        protected = ApplicationWorkload.single_epoch(1 * WEEK, 0.8, abft_capable=True)
        unprotected = ApplicationWorkload.single_epoch(1 * WEEK, 0.8, abft_capable=False)
        model = AbftPeriodicCkptModel(paper_parameters)
        assert model.waste(unprotected) > model.waste(protected)
        assert model.evaluate(unprotected).details["epochs_with_abft"] == 0

    def test_per_epoch_vs_collapsed(self, paper_parameters):
        workload = ApplicationWorkload.iterative(50, 4 * 60 * MINUTE, 0.8)
        per_epoch = AbftPeriodicCkptModel(paper_parameters, per_epoch=True).waste(workload)
        collapsed = AbftPeriodicCkptModel(paper_parameters, per_epoch=False).waste(workload)
        # Per-epoch analysis pays forced checkpoints per epoch, never less.
        assert per_epoch >= collapsed

    def test_short_general_phase_uses_unprotected_branch(self, paper_parameters):
        workload = ApplicationWorkload.single_epoch(1 * WEEK, 0.999)
        details = AbftPeriodicCkptModel(paper_parameters).evaluate(workload).details
        assert details["epochs_with_periodic_general"] == 0


class TestNoFaultToleranceModel:
    def test_exponential_blowup(self, paper_parameters):
        short = ApplicationWorkload.single_epoch(30 * MINUTE, 0.8)
        long = ApplicationWorkload.single_epoch(10 * 120 * MINUTE, 0.8)
        model = NoFaultToleranceModel(paper_parameters)
        assert model.waste(short) < 0.3
        assert model.waste(long) > 0.9

    def test_worse_than_checkpointing_for_long_jobs(self, paper_parameters, paper_workload):
        no_ft = NoFaultToleranceModel(paper_parameters).waste(paper_workload)
        pure = PurePeriodicCkptModel(paper_parameters).waste(paper_workload)
        assert no_ft > pure

    def test_expected_time_at_least_t0(self, paper_parameters):
        workload = ApplicationWorkload.single_epoch(1 * MINUTE, 0.5)
        prediction = NoFaultToleranceModel(paper_parameters).evaluate(workload)
        assert prediction.final_time >= workload.total_time
