"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure7_flags(self):
        args = build_parser().parse_args(
            ["figure7", "--validate", "--runs", "10", "--reduced"]
        )
        assert args.command == "figure7"
        assert args.validate and args.reduced
        assert args.runs == 10

    def test_weak_scaling_flags(self):
        args = build_parser().parse_args(
            ["figure9", "--mtbf-scaling", "constant", "--nodes", "1000", "10000"]
        )
        assert args.mtbf_scaling == "constant"
        assert args.nodes == [1000, 10000]

    def test_abft_flags(self):
        args = build_parser().parse_args(["abft", "--kernel", "cholesky", "--n", "32"])
        assert args.kernel == "cholesky"
        assert args.n == 32


class TestMain:
    def test_figure8_runs_and_prints(self, capsys):
        exit_code = main(["figure8", "--nodes", "1000", "10000"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 8" in captured
        assert "waste[ABFT&PeriodicCkpt]" in captured

    def test_figure10_csv_output(self, tmp_path, capsys):
        csv_path = tmp_path / "fig10.csv"
        exit_code = main(["figure10", "--csv", str(csv_path)])
        assert exit_code == 0
        assert csv_path.exists()
        assert "nodes" in csv_path.read_text()

    def test_figure7_reduced(self, capsys):
        exit_code = main(["figure7", "--reduced"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 7" in captured

    def test_abft_command(self, capsys):
        exit_code = main(["abft", "--kernel", "lu", "--n", "32", "--block-size", "8", "--trials", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "measured phi" in captured
