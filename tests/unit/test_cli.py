"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure7_flags(self):
        args = build_parser().parse_args(
            ["figure7", "--validate", "--runs", "10", "--reduced"]
        )
        assert args.command == "figure7"
        assert args.validate and args.reduced
        assert args.runs == 10

    def test_weak_scaling_flags(self):
        args = build_parser().parse_args(
            ["figure9", "--mtbf-scaling", "constant", "--nodes", "1000", "10000"]
        )
        assert args.mtbf_scaling == "constant"
        assert args.nodes == [1000, 10000]

    def test_abft_flags(self):
        args = build_parser().parse_args(["abft", "--kernel", "cholesky", "--n", "32"])
        assert args.kernel == "cholesky"
        assert args.n == 32

    def test_campaign_flags(self):
        args = build_parser().parse_args(
            [
                "campaign",
                "--validate",
                "--runs",
                "25",
                "--reduced",
                "--workers",
                "3",
                "--cache-dir",
                "/tmp/some-cache",
                "--resume",
            ]
        )
        assert args.command == "campaign"
        assert args.validate and args.reduced and args.resume
        assert args.runs == 25
        assert args.workers == 3
        assert args.cache_dir == "/tmp/some-cache"

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert not args.resume
        assert args.cache_dir is None
        assert args.workers is None

    def test_figure7_workers_flag(self):
        args = build_parser().parse_args(["figure7", "--workers", "2"])
        assert args.workers == 2


class TestMain:
    def test_figure8_runs_and_prints(self, capsys):
        exit_code = main(["figure8", "--nodes", "1000", "10000"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 8" in captured
        assert "waste[ABFT&PeriodicCkpt]" in captured

    def test_figure10_csv_output(self, tmp_path, capsys):
        csv_path = tmp_path / "fig10.csv"
        exit_code = main(["figure10", "--csv", str(csv_path)])
        assert exit_code == 0
        assert csv_path.exists()
        assert "nodes" in csv_path.read_text()

    def test_figure7_reduced(self, capsys):
        exit_code = main(["figure7", "--reduced"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 7" in captured

    def test_abft_command(self, capsys):
        exit_code = main(["abft", "--kernel", "lu", "--n", "32", "--block-size", "8", "--trials", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "measured phi" in captured


class TestCampaignCommand:
    def test_campaign_model_only(self, capsys):
        exit_code = main(["campaign", "--reduced"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Campaign: waste vs (MTBF, alpha)" in captured
        assert "computed 20, reused 0 cached" in captured

    def test_campaign_cache_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["campaign", "--reduced", "--cache-dir", cache_dir]

        exit_code = main(args)
        first = capsys.readouterr().out
        assert exit_code == 0
        assert "computed 20, reused 0 cached" in first
        assert cache_dir in first

        # Rerun with --resume: every point comes from the cache.
        exit_code = main(args + ["--resume"])
        second = capsys.readouterr().out
        assert exit_code == 0
        assert "computed 0, reused 20 cached" in second

    def test_campaign_validate_with_workers_and_csv(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        csv_path = tmp_path / "campaign.csv"
        exit_code = main(
            [
                "campaign",
                "--reduced",
                "--validate",
                "--runs",
                "3",
                "--seed",
                "7",
                "--workers",
                "1",
                "--cache-dir",
                cache_dir,
                "--csv",
                str(csv_path),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "sim_waste[PurePeriodicCkpt]" in captured
        assert csv_path.exists()
        assert "mtbf_minutes" in csv_path.read_text()

    def test_figure7_with_workers(self, capsys):
        exit_code = main(["figure7", "--reduced", "--workers", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 7" in captured
