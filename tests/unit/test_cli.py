"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure7_flags(self):
        args = build_parser().parse_args(
            ["figure7", "--validate", "--runs", "10", "--reduced"]
        )
        assert args.command == "figure7"
        assert args.validate and args.reduced
        assert args.runs == 10

    def test_weak_scaling_flags(self):
        args = build_parser().parse_args(
            ["figure9", "--mtbf-scaling", "constant", "--nodes", "1000", "10000"]
        )
        assert args.mtbf_scaling == "constant"
        assert args.nodes == [1000, 10000]

    def test_abft_flags(self):
        args = build_parser().parse_args(["abft", "--kernel", "cholesky", "--n", "32"])
        assert args.kernel == "cholesky"
        assert args.n == 32

    def test_campaign_flags(self):
        args = build_parser().parse_args(
            [
                "campaign",
                "--validate",
                "--runs",
                "25",
                "--reduced",
                "--workers",
                "3",
                "--cache-dir",
                "/tmp/some-cache",
                "--resume",
            ]
        )
        assert args.command == "campaign"
        assert args.validate and args.reduced and args.resume
        assert args.runs == 25
        assert args.workers == 3
        assert args.cache_dir == "/tmp/some-cache"

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert not args.resume
        assert args.cache_dir is None
        assert args.workers == "auto"

    def test_figure7_workers_flag(self):
        args = build_parser().parse_args(["figure7", "--workers", "2"])
        assert args.workers == 2

    def test_campaign_workers_accepts_count_and_auto(self):
        args = build_parser().parse_args(["campaign", "--workers", "3"])
        assert args.workers == 3
        args = build_parser().parse_args(["campaign", "--workers", "auto"])
        assert args.workers == "auto"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--workers", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--workers", "some"])


class TestMain:
    def test_figure8_runs_and_prints(self, capsys):
        exit_code = main(["figure8", "--nodes", "1000", "10000"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 8" in captured
        assert "waste[ABFT&PeriodicCkpt]" in captured

    def test_figure10_csv_output(self, tmp_path, capsys):
        csv_path = tmp_path / "fig10.csv"
        exit_code = main(["figure10", "--csv", str(csv_path)])
        assert exit_code == 0
        assert csv_path.exists()
        assert "nodes" in csv_path.read_text()

    def test_figure7_reduced(self, capsys):
        exit_code = main(["figure7", "--reduced"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 7" in captured

    def test_abft_command(self, capsys):
        exit_code = main(["abft", "--kernel", "lu", "--n", "32", "--block-size", "8", "--trials", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "measured phi" in captured

    def test_main_resets_fallback_note_dedup(self, capsys):
        # The fallback-note dedup set is module-global so one *run* reports
        # each obstacle once; a fresh CLI invocation must start clean, not
        # inherit the previous run's suppressions (long-lived test processes
        # and REPLs call main() repeatedly).
        from repro.simulation.vectorized import (
            note_backend_fallback,
            reset_backend_fallback_notes,
        )

        try:
            note_backend_fallback("sentinel obstacle")
            note_backend_fallback("sentinel obstacle")  # deduplicated
            assert capsys.readouterr().err.count("sentinel obstacle") == 1
            assert main(["scenario", "list"]) == 0
            capsys.readouterr()
            note_backend_fallback("sentinel obstacle")  # fresh run notes again
            assert "sentinel obstacle" in capsys.readouterr().err
        finally:
            reset_backend_fallback_notes()


class TestCampaignCommand:
    def test_campaign_model_only(self, capsys):
        exit_code = main(["campaign", "--reduced"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Campaign: waste vs (MTBF, alpha)" in captured.out
        # Run diagnostics go to stderr; stdout stays machine-parseable.
        assert "computed 20, reused 0 cached" in captured.err
        assert "cached" not in captured.out

    def test_campaign_cache_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["campaign", "--reduced", "--cache-dir", cache_dir]

        exit_code = main(args)
        first = capsys.readouterr()
        assert exit_code == 0
        assert "computed 20, reused 0 cached" in first.err
        assert cache_dir in first.err
        assert cache_dir not in first.out

        # Rerun with --resume: every point comes from the cache.
        exit_code = main(args + ["--resume"])
        second = capsys.readouterr()
        assert exit_code == 0
        assert "computed 0, reused 20 cached" in second.err

    def test_campaign_validate_with_workers_and_csv(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        csv_path = tmp_path / "campaign.csv"
        exit_code = main(
            [
                "campaign",
                "--reduced",
                "--validate",
                "--runs",
                "3",
                "--seed",
                "7",
                "--workers",
                "1",
                "--cache-dir",
                cache_dir,
                "--csv",
                str(csv_path),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "sim_waste[PurePeriodicCkpt]" in captured
        assert csv_path.exists()
        assert "mtbf_minutes" in csv_path.read_text()

    def test_figure7_with_workers(self, capsys):
        exit_code = main(["figure7", "--reduced", "--workers", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 7" in captured


class TestScenarioCommand:
    @staticmethod
    def write_spec(tmp_path, **overrides):
        from repro.scenario import Scenario

        builder = Scenario.quick().with_simulation(
            validate=overrides.pop("validate", False), runs=5, seed=3
        )
        if overrides.get("failures"):
            model, params = overrides.pop("failures")
            builder = builder.with_failures(model, **params)
        return str(builder.build().save(tmp_path / "spec.json"))

    def test_scenario_flags(self, tmp_path):
        path = self.write_spec(tmp_path)
        args = build_parser().parse_args(
            ["scenario", "run", path, "--validate", "--runs", "5", "--workers", "2"]
        )
        assert args.command == "scenario"
        assert args.scenario_command == "run"
        assert args.spec == path
        assert args.validate and args.runs == 5 and args.workers == 2

    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_scenario_list(self, capsys):
        exit_code = main(["scenario", "list"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "ABFT&PeriodicCkpt" in captured
        assert "weibull" in captured
        assert "aliases" in captured

    def test_scenario_run_model_only(self, tmp_path, capsys):
        path = self.write_spec(tmp_path)
        exit_code = main(["scenario", "run", path])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario 'quick'" in captured
        assert "model_waste[ABFT&PeriodicCkpt]" in captured
        assert "sim_waste" not in captured

    def test_scenario_run_validated_weibull(self, tmp_path, capsys):
        import warnings

        path = self.write_spec(
            tmp_path, validate=True, failures=("weibull", {"shape": 0.7})
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            exit_code = main(["scenario", "run", path])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "sim_waste[ABFT&PeriodicCkpt]" in captured

    def test_scenario_run_csv_and_cache(self, tmp_path, capsys):
        path = self.write_spec(tmp_path)
        cache_dir = str(tmp_path / "cache")
        csv_path = tmp_path / "out.csv"
        exit_code = main(
            ["scenario", "run", path, "--cache-dir", cache_dir, "--csv", str(csv_path)]
        )
        first = capsys.readouterr()
        assert exit_code == 0
        assert csv_path.exists()
        assert "computed 12, reused 0 cached" in first.err
        assert "cached" not in first.out

        exit_code = main(["scenario", "run", path, "--cache-dir", cache_dir, "--resume"])
        second = capsys.readouterr()
        assert exit_code == 0
        assert "computed 0, reused 12 cached" in second.err

    def test_scenario_run_missing_file(self, tmp_path, capsys):
        exit_code = main(["scenario", "run", str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "not found" in captured.err

    def test_scenario_run_unknown_protocol_suggests(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "protocols": ["BiPeriodikCkpt"],
                    "platform": {"mtbf": 3600.0, "checkpoint": 60.0},
                    "workload": {"total_time": 7200.0},
                }
            )
        )
        exit_code = main(["scenario", "run", str(path)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "did you mean 'BiPeriodicCkpt'" in captured.err

    def test_scenario_run_schema_error_names_path(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "platform": {"mtbf": 3600.0, "checkpoint": "ten"},
                    "workload": {"total_time": 7200.0},
                }
            )
        )
        exit_code = main(["scenario", "run", str(path)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "platform.checkpoint" in captured.err


class TestScenarioValidateCommand:
    write_spec = staticmethod(TestScenarioCommand.write_spec)

    def test_validate_flags(self, tmp_path):
        path = self.write_spec(tmp_path)
        args = build_parser().parse_args(["scenario", "validate", path])
        assert args.scenario_command == "validate"
        assert args.spec == path

    def test_valid_spec_passes_without_simulating(self, tmp_path, capsys):
        path = self.write_spec(tmp_path)
        exit_code = main(["scenario", "validate", path])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "is valid" in captured
        assert "would evaluate 12 grid point(s)" in captured
        assert "model_waste" not in captured  # nothing was run

    def test_missing_file_exits_2(self, tmp_path, capsys):
        exit_code = main(["scenario", "validate", str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "not found" in captured.err

    def test_schema_error_names_path(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "platform": {"mtbf": "ten minutes", "checkpoint": 600.0},
                    "workload": {"total_time": 3600.0},
                }
            )
        )
        exit_code = main(["scenario", "validate", str(path)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "platform.mtbf" in captured.err

    def test_unknown_protocol_exits_2_with_suggestion(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "protocols": ["PurePeriodikCkpt"],
                    "platform": {"mtbf": 7200.0, "checkpoint": 600.0},
                    "workload": {"total_time": 3600.0},
                }
            )
        )
        exit_code = main(["scenario", "validate", str(path)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "did you mean" in captured.err

    def test_trace_vectorized_backend_validates(self, tmp_path, capsys):
        # Trace replay batches through per-trial cursors now, so a
        # backend='vectorized' spec over the trace law is valid.
        import json

        path = tmp_path / "trace.json"
        path.write_text(
            json.dumps(
                {
                    "protocols": ["BiPeriodicCkpt"],
                    "platform": {"mtbf": 7200.0, "checkpoint": 600.0},
                    "workload": {"total_time": 3600.0},
                    "failures": {
                        "model": "trace",
                        "params": {"interarrivals": [100.0, 200.0]},
                    },
                    "simulation": {"backend": "vectorized"},
                }
            )
        )
        exit_code = main(["scenario", "validate", str(path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "is valid" in captured.out


class TestScenarioBackendFlag:
    @staticmethod
    def write_spec(tmp_path):
        from repro.scenario import Scenario

        builder = (
            Scenario.quick()
            .with_protocols("PurePeriodicCkpt")
            .with_simulation(validate=True, runs=5, seed=3)
        )
        return str(builder.build().save(tmp_path / "spec.json"))

    def test_backend_flag_parsed(self, tmp_path):
        path = self.write_spec(tmp_path)
        args = build_parser().parse_args(
            ["scenario", "run", path, "--backend", "vectorized"]
        )
        assert args.backend == "vectorized"

    def test_backend_flag_rejects_unknown(self, tmp_path):
        path = self.write_spec(tmp_path)
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "run", path, "--backend", "gpu"])

    def test_vectorized_run_matches_event_run(self, tmp_path, capsys):
        path = self.write_spec(tmp_path)
        assert main(["scenario", "run", path, "--backend", "event"]) == 0
        event_out = capsys.readouterr().out
        assert main(["scenario", "run", path, "--backend", "vectorized"]) == 0
        vectorized_out = capsys.readouterr().out
        event_rows = [l for l in event_out.splitlines() if "sim_waste" in l or "|" in l]
        vectorized_rows = [
            l for l in vectorized_out.splitlines() if "sim_waste" in l or "|" in l
        ]
        assert event_rows == vectorized_rows

    def test_vectorized_phased_run_matches_event_run(self, tmp_path, capsys):
        from repro.scenario import Scenario

        path = str(
            Scenario.quick()
            .with_protocols("BiPeriodicCkpt", "ABFT&PeriodicCkpt")
            .with_simulation(validate=True, runs=5, seed=3)
            .build()
            .save(tmp_path / "spec.json")
        )
        assert main(["scenario", "run", path, "--backend", "event"]) == 0
        event_out = capsys.readouterr().out
        assert main(["scenario", "run", path, "--backend", "vectorized"]) == 0
        vectorized_out = capsys.readouterr().out
        event_rows = [l for l in event_out.splitlines() if "sim_waste" in l or "|" in l]
        vectorized_rows = [
            l for l in vectorized_out.splitlines() if "sim_waste" in l or "|" in l
        ]
        assert event_rows == vectorized_rows

    def test_trace_vectorized_run_matches_event_run(self, tmp_path, capsys):
        from repro.scenario import Scenario

        path = str(
            Scenario.quick()
            .with_protocols("BiPeriodicCkpt")
            .with_failures("trace", interarrivals=[100.0, 200.0, 300.0])
            .with_simulation(validate=True, runs=5, seed=3)
            .build()
            .save(tmp_path / "spec.json")
        )
        assert main(["scenario", "run", path, "--backend", "event"]) == 0
        event_out = capsys.readouterr().out
        assert main(["scenario", "run", path, "--backend", "vectorized"]) == 0
        vectorized_out = capsys.readouterr().out
        assert event_out == vectorized_out


class TestScenarioListBackends:
    def test_lists_failure_models_and_backend_support(self, capsys):
        exit_code = main(["scenario", "list"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        # Failure models stay listed, and every protocol line now names its
        # engine backends so users can pick a valid backend= without
        # reading source.
        assert "registered failure models:" in captured
        assert "lognormal (aliases: log-normal) " \
               "[backends: event+vectorized]" in captured
        assert "trace (aliases: trace-based, replay) " \
               "[backends: event+vectorized]" in captured
        assert "PurePeriodicCkpt (aliases: pure, pure-periodic) " \
               "[backends: event+vectorized; storage: any registered stack]" \
               in captured
        assert "BiPeriodicCkpt (aliases: bi, bi-periodic) " \
               "[backends: event+vectorized; storage: any registered stack]" \
               in captured
        assert "ABFT&PeriodicCkpt (aliases: abft, composite, abft-periodic) " \
               "[backends: event+vectorized; storage: any registered stack]" \
               in captured
        assert "NoFT (aliases: none, no-ft, restart) " \
               "[backends: event+vectorized; storage: none]" in captured
        assert "registered storage stacks (scenario 'storage.kind'):" \
               in captured
        assert "multi-level (aliases: multilevel) " \
               "[nested media: local, remote]" in captured
        assert "buddy [nested media: fallback_storage] " \
               "[MTBF-sensitive lowering]" in captured
        assert "engine backends (scenario 'simulation.backend'): " \
               "event, vectorized, auto" in captured
        assert (
            "a vectorized failure law (exponential, weibull, lognormal, trace)"
            in captured
        )


class TestOptimizeCommand:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize"])

    def test_period_flags(self):
        args = build_parser().parse_args(
            [
                "optimize", "period", "--protocol", "pure", "--mtbf", "7200",
                "--checkpoint", "600", "--refine", "--runs", "50",
                "--backend", "vectorized", "--workers", "2",
                "--cache-dir", "/tmp/x", "--resume",
            ]
        )
        assert args.command == "optimize"
        assert args.optimize_command == "period"
        assert args.protocol == "pure" and args.refine
        assert args.runs == 50 and args.backend == "vectorized"
        assert args.workers == 2 and args.resume

    def test_period_prints_closed_form_agreement(self, capsys):
        exit_code = main(
            ["optimize", "period", "--protocol", "PurePeriodicCkpt",
             "--mtbf", "7200", "--checkpoint", "600", "--t0", "86400"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "closed form (Eq. 11)" in captured
        assert "minimal model waste" in captured
        # Acceptance bar: <= 0.1% relative error against Eq. 11.
        import re

        match = re.search(r"relative error ([0-9.e+-]+)", captured)
        assert match is not None
        assert float(match.group(1)) <= 1e-3

    def test_period_infeasible_regime(self, capsys):
        exit_code = main(
            ["optimize", "period", "--protocol", "pure",
             "--mtbf", "600", "--checkpoint", "600", "--t0", "86400"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "infeasible" in captured

    def test_period_unknown_protocol_exits_2(self, capsys):
        exit_code = main(["optimize", "period", "--protocol", "PureCkptt"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "did you mean" in captured.err

    def test_period_refine_with_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = [
            "optimize", "period", "--protocol", "pure", "--t0", "86400",
            "--refine", "--runs", "10", "--backend", "auto",
            "--cache-dir", cache_dir, "--resume",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "refined periods" in first and "simulated waste" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 campaigns computed" in second

    def test_compare_names_a_winner(self, capsys):
        exit_code = main(["optimize", "compare", "--t0", "86400"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "winning protocol(s) over the grid:" in captured
        assert "opt_waste[NoFT]" in captured

    def test_compare_from_spec_csv(self, tmp_path, capsys):
        spec_path = TestScenarioCommand.write_spec(tmp_path)
        csv_path = tmp_path / "compare.csv"
        exit_code = main(
            ["optimize", "compare", "--spec", spec_path, "--csv", str(csv_path)]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert csv_path.exists()
        assert "winner" in csv_path.read_text()

    def test_map_flags(self):
        args = build_parser().parse_args(
            [
                "optimize", "map", "--nodes", "1000", "100000",
                "--node-mtbf-years", "5", "125", "--checkpoint", "600",
                "--phi", "1.03", "--simulate", "--runs", "8",
                "--workers", "2", "--resume", "--json", "/tmp/map.json",
            ]
        )
        assert args.optimize_command == "map"
        assert args.nodes == [1000, 100000]
        assert args.node_mtbf_years == [5.0, 125.0]
        assert args.simulate and args.resume and args.workers == 2

    def test_map_model_only_round_trip(self, tmp_path, capsys):
        json_path = tmp_path / "map.json"
        cache_dir = str(tmp_path / "cache")
        args = [
            "optimize", "map", "--nodes", "1000", "100000",
            "--node-mtbf-years", "5", "125", "--t0", "86400",
            "--cache-dir", cache_dir, "--resume", "--json", str(json_path),
        ]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "winning protocol" in first.out
        assert "computed 4, reused 0 cached" in first.err
        assert "cached" not in first.out
        first_map = json_path.read_text()

        # Resumed re-run: all cells cached, identical winners and bytes.
        assert main(args) == 0
        second = capsys.readouterr()
        assert "computed 0, reused 4 cached" in second.err
        assert json_path.read_text() == first_map

    def test_map_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "map.csv"
        exit_code = main(
            ["optimize", "map", "--nodes", "1000", "--node-mtbf-years", "25",
             "--t0", "86400", "--csv", str(csv_path)]
        )
        assert exit_code == 0
        assert csv_path.exists()
        assert "winner" in csv_path.read_text()

    def test_map_rejects_bad_phi(self, capsys):
        exit_code = main(
            ["optimize", "map", "--nodes", "1000", "--node-mtbf-years", "25",
             "--phi", "0.5"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "phi" in captured.err


class TestServeCommand:
    def test_serve_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--host",
                "0.0.0.0",
                "--port",
                "9001",
                "--regime-map",
                "/tmp/regime.json",
                "--cache-dir",
                "/tmp/advisor-cache",
                "--workers",
                "4",
                "--answer-cache-size",
                "128",
            ]
        )
        assert args.command == "serve"
        assert args.host == "0.0.0.0"
        assert args.port == 9001
        assert args.regime_map == "/tmp/regime.json"
        assert args.cache_dir == "/tmp/advisor-cache"
        assert args.workers == 4
        assert args.answer_cache_size == 128

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.regime_map is None
        assert args.cache_dir is None
        assert args.workers == 2
        assert args.answer_cache_size == 4096

    def test_serve_rejects_nonpositive_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--workers", "0"])

    def test_serve_missing_regime_map_exits_2(self, capsys):
        exit_code = main(["serve", "--regime-map", "/nonexistent/map.json"])
        assert exit_code == 2
        assert "cannot start advisor service" in capsys.readouterr().err


class TestScenarioListJson:
    def test_json_catalog_on_stdout(self, capsys):
        import json

        exit_code = main(["scenario", "list", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        catalog = json.loads(captured.out)  # stdout is pure JSON
        protocol_names = [entry["name"] for entry in catalog["protocols"]]
        assert "PurePeriodicCkpt" in protocol_names
        assert "ABFT&PeriodicCkpt" in protocol_names
        model_names = [entry["name"] for entry in catalog["failure_models"]]
        assert "exponential" in model_names
        assert catalog["engine_backends"] == ["event", "vectorized", "auto"]

    def test_json_matches_the_service_catalog(self, capsys):
        import json

        from repro.core.registry import registry_catalog

        main(["scenario", "list", "--json"])
        assert json.loads(capsys.readouterr().out) == registry_catalog()


class TestOptimizeCompareJson:
    def test_json_ranking_on_stdout(self, capsys):
        import json

        exit_code = main(
            [
                "optimize",
                "compare",
                "--json",
                "--mtbf",
                "86400",
                "--t0",
                "360000",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        ranking = json.loads(captured.out)  # stdout is pure JSON
        assert len(ranking["content_hash"]) == 64
        assert ranking["spec"]["platform"]["mtbf"] == 86400.0
        (point,) = ranking["points"]
        assert point["winner"] in ranking["protocols"]
        for name in ranking["protocols"]:
            assert "waste" in point["optima"][name]

    def test_json_and_table_modes_agree_on_the_winner(self, capsys):
        import json

        main(["optimize", "compare", "--json", "--mtbf", "7200"])
        winner = json.loads(capsys.readouterr().out)["points"][0]["winner"]
        main(["optimize", "compare", "--mtbf", "7200"])
        assert winner in capsys.readouterr().out
