"""Unit tests for the weak-scaling laws of Section V-C."""

from __future__ import annotations

import pytest

from repro.application.scaling import (
    KernelScalingLaw,
    ScalingMode,
    WeakScalingScenario,
    gustafson_parallel_time,
)
from repro.experiments.config import paper_figure8_scenario, paper_figure9_scenario
from repro.utils import DAY, MINUTE


class TestGustafsonParallelTime:
    def test_cubic_kernel_grows_as_sqrt(self):
        assert gustafson_parallel_time(60.0, 40_000, 10_000, 3.0) == pytest.approx(120.0)

    def test_quadratic_kernel_is_constant(self):
        assert gustafson_parallel_time(60.0, 1_000_000, 10_000, 2.0) == pytest.approx(60.0)

    def test_reference_point_identity(self):
        assert gustafson_parallel_time(42.0, 10_000, 10_000, 3.0) == pytest.approx(42.0)

    def test_downscaling(self):
        assert gustafson_parallel_time(60.0, 2_500, 10_000, 3.0) == pytest.approx(30.0)


class TestScalingMode:
    def test_factors(self):
        assert ScalingMode.CONSTANT.factor(100, 10) == 1.0
        assert ScalingMode.LINEAR.factor(100, 10) == 10.0
        assert ScalingMode.INVERSE.factor(100, 10) == pytest.approx(0.1)
        assert ScalingMode.SQRT.factor(100, 25) == pytest.approx(2.0)


class TestKernelScalingLaw:
    def test_time_at(self):
        law = KernelScalingLaw(reference_time=48.0, complexity_exponent=3.0)
        assert law.time_at(40_000, 10_000) == pytest.approx(96.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelScalingLaw(reference_time=0.0, complexity_exponent=3.0)


class TestWeakScalingScenario:
    def test_paper_figure9_alpha_values(self):
        # The paper prints alpha = 0.55, 0.8, 0.92, 0.975 under the x-axis.
        scenario = paper_figure9_scenario()
        assert scenario.alpha_at(1_000) == pytest.approx(0.55, abs=0.01)
        assert scenario.alpha_at(10_000) == pytest.approx(0.80, abs=0.001)
        assert scenario.alpha_at(100_000) == pytest.approx(0.92, abs=0.01)
        assert scenario.alpha_at(1_000_000) == pytest.approx(0.975, abs=0.001)

    def test_figure8_alpha_constant(self):
        scenario = paper_figure8_scenario()
        for nodes in (1_000, 10_000, 1_000_000):
            assert scenario.alpha_at(nodes) == pytest.approx(0.8)

    def test_checkpoint_and_mtbf_scaling(self):
        scenario = paper_figure8_scenario()
        assert scenario.checkpoint_at(10_000) == pytest.approx(1 * MINUTE)
        assert scenario.checkpoint_at(100_000) == pytest.approx(10 * MINUTE)
        assert scenario.mtbf_at(10_000) == pytest.approx(DAY)
        assert scenario.mtbf_at(100_000) == pytest.approx(DAY / 10.0)

    def test_total_time_scales_with_epoch_count(self):
        scenario = paper_figure8_scenario()
        assert scenario.total_time_at(10_000) == pytest.approx(1_000 * MINUTE)

    def test_with_checkpoint_scaling(self):
        scenario = paper_figure8_scenario().with_checkpoint_scaling(
            ScalingMode.CONSTANT
        )
        assert scenario.checkpoint_at(1_000_000) == pytest.approx(1 * MINUTE)

    def test_with_general_law(self):
        scenario = paper_figure8_scenario().with_general_law(
            KernelScalingLaw(reference_time=0.2 * MINUTE, complexity_exponent=2.0)
        )
        assert scenario.general_time_at(1_000_000) == pytest.approx(0.2 * MINUTE)

    def test_validation(self):
        scenario = paper_figure8_scenario()
        with pytest.raises(ValueError):
            WeakScalingScenario(
                reference_nodes=scenario.reference_nodes,
                epoch_count=scenario.epoch_count,
                general_law=scenario.general_law,
                library_law=scenario.library_law,
                reference_checkpoint=scenario.reference_checkpoint,
                reference_recovery=scenario.reference_recovery,
                checkpoint_scaling=scenario.checkpoint_scaling,
                reference_mtbf=scenario.reference_mtbf,
                mtbf_scaling=scenario.mtbf_scaling,
                downtime=scenario.downtime,
                library_fraction=scenario.library_fraction,
                abft_overhead=0.9,  # phi < 1 is invalid
                abft_reconstruction=scenario.abft_reconstruction,
            )
