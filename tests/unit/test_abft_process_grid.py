"""Unit tests for the simulated 2-D block-cyclic process grid."""

from __future__ import annotations

import pytest

from repro.abft import ProcessGrid


class TestProcessGrid:
    def test_block_cyclic_ownership(self):
        grid = ProcessGrid(2, 3)
        assert grid.owner(0, 0) == (0, 0)
        assert grid.owner(1, 4) == (1, 1)
        assert grid.owner(5, 5) == (1, 2)

    def test_rank_roundtrip(self):
        grid = ProcessGrid(3, 4)
        for rank in range(grid.size):
            assert grid.rank_of(*grid.coordinates_of(rank)) == rank

    def test_blocks_owned_partition_the_matrix(self):
        grid = ProcessGrid(2, 2)
        block_rows = block_cols = 4
        all_blocks = set()
        for proc in grid.processes():
            owned = grid.blocks_owned(*proc, block_rows, block_cols)
            assert not (all_blocks & set(owned))
            all_blocks.update(owned)
        assert all_blocks == {(i, j) for i in range(4) for j in range(4)}

    def test_blocks_per_row_and_column(self):
        grid = ProcessGrid(2, 4)
        assert grid.blocks_per_row(8) == 2
        assert grid.blocks_per_column(8) == 4
        assert grid.blocks_per_row(9) == 3

    def test_required_checksums(self):
        assert ProcessGrid(2, 2).required_checksums(4, 4) == 2
        assert ProcessGrid(1, 1).required_checksums(3, 3) == 3
        assert ProcessGrid(4, 4).required_checksums(4, 4) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessGrid(0, 2)
        grid = ProcessGrid(2, 2)
        with pytest.raises(ValueError):
            grid.owner(-1, 0)
        with pytest.raises(ValueError):
            grid.blocks_owned(2, 0, 4, 4)
        with pytest.raises(ValueError):
            grid.coordinates_of(4)

    def test_size(self):
        assert ProcessGrid(3, 5).size == 15
