"""Unit tests for the Monte-Carlo runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import MonteCarloRunner, run_monte_carlo
from repro.simulation.trace import ExecutionTrace, TimeBreakdown


def _fake_simulation(rng: np.random.Generator) -> ExecutionTrace:
    """A toy stochastic 'simulation': makespan = 100 + Exp(10)."""
    extra = float(rng.exponential(10.0))
    return ExecutionTrace(
        protocol="toy",
        application_time=100.0,
        makespan=100.0 + extra,
        failure_count=int(extra > 10.0),
        breakdown=TimeBreakdown(useful_work=100.0, lost_work=extra),
    )


class TestRunMonteCarlo:
    def test_basic_aggregation(self):
        result = run_monte_carlo(_fake_simulation, runs=200, seed=1)
        assert result.runs == 200
        assert result.protocol == "toy"
        assert result.application_time == 100.0
        assert 0.0 < result.mean_waste < 0.5
        assert result.waste.count == 200

    def test_reproducible_with_seed(self):
        a = run_monte_carlo(_fake_simulation, runs=50, seed=7)
        b = run_monte_carlo(_fake_simulation, runs=50, seed=7)
        assert a.mean_waste == b.mean_waste
        assert a.mean_makespan == b.mean_makespan

    def test_different_seeds_differ(self):
        a = run_monte_carlo(_fake_simulation, runs=50, seed=1)
        b = run_monte_carlo(_fake_simulation, runs=50, seed=2)
        assert a.mean_waste != b.mean_waste

    def test_keep_traces(self):
        result = run_monte_carlo(_fake_simulation, runs=10, seed=1, keep_traces=True)
        assert len(result.traces) == 10

    def test_traces_not_kept_by_default(self):
        result = run_monte_carlo(_fake_simulation, runs=10, seed=1)
        assert result.traces == ()

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            run_monte_carlo(_fake_simulation, runs=0)

    def test_mean_waste_matches_expectation(self):
        # E[waste] = E[1 - 100/(100+X)] with X ~ Exp(10); estimate loosely.
        result = run_monte_carlo(_fake_simulation, runs=3000, seed=3)
        assert result.mean_waste == pytest.approx(0.085, abs=0.02)


class TestMonteCarloRunner:
    def test_runner_run(self):
        runner = MonteCarloRunner(runs=20, seed=5)
        result = runner.run(_fake_simulation)
        assert result.runs == 20

    def test_run_many_uses_distinct_seeds(self):
        runner = MonteCarloRunner(runs=20, seed=5)
        results = runner.run_many([_fake_simulation, _fake_simulation])
        assert results[0].mean_waste != results[1].mean_waste

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(runs=0)

    def test_properties(self):
        runner = MonteCarloRunner(runs=7, seed=9)
        assert runner.runs == 7
        assert runner.seed == 9


class TestRunManySeedPolicy:
    """Pins the documented policy: simulator ``i`` gets root seed ``seed + i``.

    Cached sweep results and the serial/parallel equivalence guarantee both
    depend on this mapping staying exactly as documented, so it is asserted
    bit for bit rather than statistically.
    """

    def test_simulator_i_gets_seed_plus_i(self):
        seed = 5
        runner = MonteCarloRunner(runs=25, seed=seed)
        results = runner.run_many([_fake_simulation, _fake_simulation, _fake_simulation])
        for index, result in enumerate(results):
            expected = run_monte_carlo(_fake_simulation, runs=25, seed=seed + index)
            assert result.waste == expected.waste
            assert result.makespan == expected.makespan
            assert result.failures == expected.failures

    def test_first_simulator_uses_root_seed_unshifted(self):
        runner = MonteCarloRunner(runs=20, seed=31)
        result = runner.run_many([_fake_simulation])[0]
        assert result.waste == run_monte_carlo(_fake_simulation, runs=20, seed=31).waste

    def test_seed_none_campaigns_are_independent(self):
        runner = MonteCarloRunner(runs=30, seed=None)
        a, b = runner.run_many([_fake_simulation, _fake_simulation])
        # Entropy-seeded campaigns must not accidentally share streams.
        assert a.mean_waste != b.mean_waste

    def test_seed_none_reruns_differ(self):
        runner = MonteCarloRunner(runs=30, seed=None)
        first = runner.run(_fake_simulation)
        second = runner.run(_fake_simulation)
        assert first.mean_waste != second.mean_waste
