"""Regression tests pinning ``sweep_mtbf_alpha`` and its SweepRunner rewrite.

``sweep_mtbf_alpha`` feeds the Figure 7 heatmaps; the campaign subsystem
(:class:`repro.campaign.SweepRunner`, the vectorised analytical grid)
materialises the same grids.  These tests pin the generator's contract --
grid ordering, waste-dict keys, numeric values at known points -- and assert
that every rewrite path reproduces it bit for bit, so figure data cannot
silently change.
"""

from __future__ import annotations

import pytest

from repro.campaign import SweepJob, SweepRunner
from repro.core.analytical import (
    AbftPeriodicCkptModel,
    BiPeriodicCkptModel,
    PurePeriodicCkptModel,
)
from repro.core.analytical.grid import waste_grid
from repro.core.parameters import ResilienceParameters
from repro.experiments.sweep import SweepPoint, sweep_mtbf_alpha
from repro.utils import MINUTE, WEEK

FACTORIES = [PurePeriodicCkptModel, BiPeriodicCkptModel, AbftPeriodicCkptModel]
PROTOCOLS = ("PurePeriodicCkpt", "BiPeriodicCkpt", "ABFT&PeriodicCkpt")
MTBFS = (60 * MINUTE, 120 * MINUTE, 240 * MINUTE)
ALPHAS = (0.0, 0.5, 1.0)

#: Paper-parameter waste values, pinned to 15 significant digits.  These are
#: the Figure 7 operating points at three MTBFs; a change here means the
#: figure data changed.
PINNED = {
    (3600.0, 0.0, "PurePeriodicCkpt"): 0.6217491947499509,
    (3600.0, 0.5, "BiPeriodicCkpt"): 0.603469522924179,
    (3600.0, 0.5, "ABFT&PeriodicCkpt"): 0.46384509969613286,
    (3600.0, 1.0, "ABFT&PeriodicCkpt"): 0.07912936833646556,
    (7200.0, 0.0, "PurePeriodicCkpt"): 0.43908725099762513,
    (7200.0, 0.5, "ABFT&PeriodicCkpt"): 0.2960592604495963,
    (7200.0, 1.0, "BiPeriodicCkpt"): 0.4063435502970184,
    (14400.0, 0.0, "PurePeriodicCkpt"): 0.30698207192814375,
    (14400.0, 0.5, "ABFT&PeriodicCkpt"): 0.1960627749244851,
    (14400.0, 1.0, "ABFT&PeriodicCkpt"): 0.04232663540380377,
}


@pytest.fixture(scope="module")
def base_parameters() -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=1 * MINUTE,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )


@pytest.fixture(scope="module")
def sweep_points(base_parameters) -> list[SweepPoint]:
    return list(
        sweep_mtbf_alpha(base_parameters, 1 * WEEK, MTBFS, ALPHAS, FACTORIES)
    )


class TestSweepMtbfAlphaContract:
    def test_grid_ordering_is_mtbf_major(self, sweep_points):
        coords = [(p.mtbf, p.alpha) for p in sweep_points]
        assert coords == [(m, a) for m in MTBFS for a in ALPHAS]

    def test_waste_dict_keys_are_protocol_names(self, sweep_points):
        for point in sweep_points:
            assert tuple(point.waste) == PROTOCOLS

    def test_pinned_values(self, sweep_points):
        by_coords = {(p.mtbf, p.alpha): p.waste for p in sweep_points}
        for (mtbf, alpha, protocol), expected in PINNED.items():
            assert by_coords[(mtbf, alpha)][protocol] == pytest.approx(
                expected, rel=1e-13
            )

    def test_alpha_zero_collapses_to_pure_periodic(self, sweep_points):
        for point in sweep_points:
            if point.alpha == 0.0:
                assert (
                    point.waste["BiPeriodicCkpt"]
                    == point.waste["ABFT&PeriodicCkpt"]
                    == point.waste["PurePeriodicCkpt"]
                )


class TestSweepRunnerEquivalence:
    """The SweepRunner rewrite must reproduce the generator bit for bit."""

    @pytest.mark.parametrize("vectorized", [True, False], ids=["vector", "scalar"])
    def test_runner_matches_generator(self, base_parameters, sweep_points, vectorized):
        job = SweepJob(
            parameters=base_parameters,
            application_time=1 * WEEK,
            mtbf_values=MTBFS,
            alpha_values=ALPHAS,
        )
        result = SweepRunner(vectorized=vectorized).run(job)
        assert len(result.points) == len(sweep_points)
        for got, expected in zip(result.points, sweep_points):
            assert (got.mtbf, got.alpha) == (expected.mtbf, expected.alpha)
            assert got.model_waste == expected.waste

    def test_vectorized_grid_matches_generator(self, base_parameters, sweep_points):
        grids = waste_grid(base_parameters, 1 * WEEK, MTBFS, ALPHAS, PROTOCOLS)
        for point in sweep_points:
            i = MTBFS.index(point.mtbf)
            j = ALPHAS.index(point.alpha)
            for protocol in PROTOCOLS:
                assert float(grids[protocol][i, j]) == point.waste[protocol]

    def test_infeasible_regime_waste_is_one(self, base_parameters):
        # MTBF below D + R: checkpointing cannot keep up, waste saturates.
        grids = waste_grid(base_parameters, 1 * WEEK, (10 * MINUTE,), (0.0,))
        assert float(grids["PurePeriodicCkpt"][0, 0]) == 1.0
        scalar = PurePeriodicCkptModel(base_parameters.with_mtbf(10 * MINUTE))
        from repro.application.workload import ApplicationWorkload

        workload = ApplicationWorkload.single_epoch(1 * WEEK, 0.0)
        assert scalar.waste(workload) == 1.0
