"""Unit tests for phases and epochs."""

from __future__ import annotations

import pytest

from repro.application import Epoch, GeneralPhase, LibraryPhase, PhaseKind


class TestPhases:
    def test_general_phase(self):
        phase = GeneralPhase(100.0)
        assert phase.is_general and not phase.is_library
        assert phase.kind is PhaseKind.GENERAL
        assert phase.duration == 100.0

    def test_library_phase_default_abft_capable(self):
        phase = LibraryPhase(50.0)
        assert phase.is_library
        assert phase.abft_capable

    def test_library_phase_non_abft(self):
        assert LibraryPhase(50.0, abft_capable=False).abft_capable is False

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            GeneralPhase(-1.0)
        with pytest.raises(ValueError):
            LibraryPhase(-1.0)


class TestEpoch:
    def test_from_duration_split(self):
        epoch = Epoch.from_duration(total=100.0, alpha=0.8)
        assert epoch.library_time == pytest.approx(80.0)
        assert epoch.general_time == pytest.approx(20.0)
        assert epoch.total_time == pytest.approx(100.0)
        assert epoch.alpha == pytest.approx(0.8)

    def test_from_times(self):
        epoch = Epoch.from_times(30.0, 70.0)
        assert epoch.alpha == pytest.approx(0.7)

    def test_alpha_extremes(self):
        assert Epoch.from_duration(10.0, 0.0).alpha == 0.0
        assert Epoch.from_duration(10.0, 1.0).alpha == 1.0

    def test_abft_capability_propagates(self):
        assert Epoch.from_duration(10.0, 0.5, abft_capable=False).abft_capable is False

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            Epoch.from_times(0.0, 0.0)
        with pytest.raises(ValueError):
            Epoch.from_duration(0.0, 0.5)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Epoch.from_duration(10.0, 1.5)

    def test_scaled(self):
        epoch = Epoch.from_times(10.0, 20.0).scaled(2.0, 0.5)
        assert epoch.general_time == pytest.approx(20.0)
        assert epoch.library_time == pytest.approx(10.0)
