"""Unit tests for the dataset partition (rho split)."""

from __future__ import annotations

import pytest

from repro.application import DatasetPartition


class TestDatasetPartition:
    def test_split_sizes(self):
        part = DatasetPartition(total_memory=1000.0, library_fraction=0.8)
        assert part.library_memory == pytest.approx(800.0)
        assert part.remainder_memory == pytest.approx(200.0)
        assert part.rho == 0.8

    def test_extremes(self):
        assert DatasetPartition(10.0, 0.0).library_memory == 0.0
        assert DatasetPartition(10.0, 1.0).remainder_memory == 0.0

    def test_split_cost_matches_paper_relation(self):
        part = DatasetPartition(total_memory=0.0, library_fraction=0.8)
        library_cost, remainder_cost = part.split_cost(600.0)
        assert library_cost == pytest.approx(0.8 * 600.0)
        assert library_cost + remainder_cost == pytest.approx(600.0)

    def test_with_total_memory(self):
        part = DatasetPartition(100.0, 0.5).with_total_memory(200.0)
        assert part.total_memory == 200.0
        assert part.library_fraction == 0.5

    def test_scaled(self):
        part = DatasetPartition(100.0, 0.25).scaled(3.0)
        assert part.total_memory == 300.0
        assert part.library_fraction == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetPartition(-1.0, 0.5)
        with pytest.raises(ValueError):
            DatasetPartition(1.0, 1.5)
        with pytest.raises(ValueError):
            DatasetPartition(1.0, 0.5).split_cost(-1.0)
