"""Unit tests for the one-shot reproduction report."""

from __future__ import annotations

from repro.experiments.report import reproduction_report


class TestReproductionReport:
    def test_report_contains_headline_sections(self):
        report = reproduction_report(validation_runs=30, seed=1)
        text = str(report)
        assert "Figure 7 corner wastes" in text
        assert "Figure 8" in text and "Figure 9" in text and "Figure 10" in text
        assert "Model validation" in text

    def test_validation_gap_is_small(self):
        report = reproduction_report(validation_runs=30, seed=1)
        assert abs(report.validation_gap) < 0.08

    def test_crossovers_present_for_all_figures(self):
        report = reproduction_report(validation_runs=30, seed=1)
        assert set(report.crossovers) == {"Figure 8", "Figure 9", "Figure 10"}
        for crossover in report.crossovers.values():
            assert crossover is None or crossover <= 1_000_000

    def test_corner_table_has_six_rows(self):
        report = reproduction_report(validation_runs=30, seed=1)
        assert len(report.figure7_corners) == 6
