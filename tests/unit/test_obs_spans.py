"""Unit tests for span tracing and Chrome trace export.

Parent links are asserted through ``span_id``/``parent_id`` directly --
the tracer's contract is an explicit hierarchy, never one inferred from
time containment.
"""

from __future__ import annotations

import json
import os
import threading

from repro.obs.spans import SpanRecord, Tracer


class TestSpanNesting:
    def test_implicit_nesting_through_thread_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_id() == inner.span_id
            assert tracer.current_id() == outer.span_id
        records = {r.name: r for r in tracer.records()}
        assert records["outer"].parent_id is None
        assert records["inner"].parent_id == records["outer"].span_id

    def test_explicit_parent_wins_over_stack(self):
        tracer = Tracer()
        with tracer.span("ambient"):
            with tracer.span("adopted", parent="other-pid-1"):
                pass
        adopted = next(r for r in tracer.records() if r.name == "adopted")
        assert adopted.parent_id == "other-pid-1"

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        children = [r for r in tracer.records() if r.name in ("a", "b")]
        assert all(r.parent_id == parent.span_id for r in children)

    def test_stacks_are_per_thread(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("threaded"):
                seen["during"] = tracer.current_id()

        with tracer.span("main-span"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        threaded = next(r for r in tracer.records() if r.name == "threaded")
        # The other thread's stack starts empty: no accidental parenting
        # under whatever the main thread had open.
        assert threaded.parent_id is None

    def test_span_ids_embed_pid_and_are_unique(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [r.span_id for r in tracer.records()]
        assert len(set(ids)) == 2
        assert all(i.startswith(f"{os.getpid()}-") for i in ids)

    def test_exception_recorded_and_span_still_closed(self):
        tracer = Tracer()
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        record = tracer.records()[0]
        assert record.args["error"] == "RuntimeError"
        assert tracer.current_id() is None

    def test_set_args_attaches_while_open(self):
        tracer = Tracer()
        with tracer.span("s", fixed=1) as span:
            span.set_args(late="yes")
        record = tracer.records()[0]
        assert record.args == {"fixed": 1, "late": "yes"}


class TestDrainAndIngest:
    def test_roundtrip_preserves_records(self):
        tracer = Tracer()
        with tracer.span("s", detail="x"):
            pass
        payloads = tracer.drain()
        assert tracer.records() == []
        assert json.loads(json.dumps(payloads)) == payloads  # picklable/plain
        other = Tracer()
        assert other.ingest(payloads) == 1
        record = other.records()[0]
        assert record.name == "s" and record.args["detail"] == "x"

    def test_ingest_reparents_worker_roots_only(self):
        worker = Tracer()
        with worker.span("root"):
            with worker.span("child"):
                pass
        gatherer = Tracer()
        with gatherer.span("campaign") as campaign:
            gatherer.ingest(worker.drain(), parent=campaign)
        records = {r.name: r for r in gatherer.records()}
        assert records["root"].parent_id == campaign.span_id
        # The worker-internal parent link is preserved untouched.
        assert records["child"].parent_id == records["root"].span_id

    def test_record_dict_roundtrip(self):
        record = SpanRecord(
            name="n", category="c", start_us=10, duration_us=5,
            span_id="1-1", parent_id=None, pid=42, tid=7, args={"k": 1},
        )
        clone = SpanRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()


class TestChromeTrace:
    def test_export_structure(self):
        tracer = Tracer()
        with tracer.span("outer", category="campaign"):
            with tracer.span("inner"):
                pass
        doc = tracer.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["name"] == "process_name"
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for event in complete:
            assert event["dur"] >= 1
            assert "span_id" in event["args"]
        inner = next(e for e in complete if e["name"] == "inner")
        outer = next(e for e in complete if e["name"] == "outer")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["cat"] == "campaign"

    def test_worker_records_get_named_rows(self):
        tracer = Tracer()
        fake_worker_pid = os.getpid() + 1
        tracer.ingest(
            [
                {
                    "name": "shard",
                    "start_us": 0,
                    "duration_us": 3,
                    "span_id": f"{fake_worker_pid}-1",
                    "parent_id": None,
                    "pid": fake_worker_pid,
                    "tid": 99,
                }
            ]
        )
        doc = tracer.chrome_trace()
        thread_meta = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert thread_meta[0]["args"]["name"] == f"worker-{fake_worker_pid}"
        shard = next(e for e in doc["traceEvents"] if e.get("name") == "shard")
        assert shard["pid"] == os.getpid()  # exporter's process row
        assert shard["tid"] == fake_worker_pid  # one row per worker
        assert shard["args"]["worker_pid"] == fake_worker_pid

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        path = tmp_path / "out.trace.json"
        tracer.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"] == ["s"]
