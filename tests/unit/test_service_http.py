"""Unit tests for the service's stdlib HTTP layer (parser, router, encoding)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.http import (
    MAX_BODY_BYTES,
    HTTPError,
    Request,
    Response,
    Router,
    read_request,
)


def parse(raw: bytes):
    """Run the async request parser over a canned byte stream."""

    async def _parse():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(_parse())


class TestReadRequest:
    def test_parses_request_line_headers_and_body(self):
        body = b'{"x":1}'
        raw = (
            b"POST /optimize?debug=1 HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.path == "/optimize"
        assert request.query == {"debug": "1"}
        assert request.headers["content-type"] == "application/json"
        assert request.body == body
        assert request.json() == {"x": 1}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_get_without_body(self):
        request = parse(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert request.method == "GET"
        assert request.body == b""

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HTTPError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_non_http_version_is_400(self):
        with pytest.raises(HTTPError) as err:
            parse(b"GET / SPDY/3\r\n\r\n")
        assert err.value.status == 400

    def test_bad_content_length_is_400(self):
        with pytest.raises(HTTPError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert err.value.status == 400

    def test_oversized_body_is_413(self):
        raw = (
            b"POST / HTTP/1.1\r\nContent-Length: "
            + str(MAX_BODY_BYTES + 1).encode()
            + b"\r\n\r\n"
        )
        with pytest.raises(HTTPError) as err:
            parse(raw)
        assert err.value.status == 413

    def test_truncated_body_is_400(self):
        with pytest.raises(HTTPError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
        assert err.value.status == 400

    def test_invalid_json_body_raises_on_access(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n{{{{")
        with pytest.raises(HTTPError) as err:
            request.json()
        assert err.value.status == 400

    def test_empty_body_json_access_is_400(self):
        request = parse(b"POST / HTTP/1.1\r\n\r\n")
        with pytest.raises(HTTPError):
            request.json()


class TestRouter:
    def _request(self, method: str, path: str) -> Request:
        return Request(method=method, path=path, query={}, headers={}, body=b"")

    def test_literal_match(self):
        router = Router()

        async def handler(request):  # pragma: no cover - never awaited
            return Response()

        router.add("GET", "/healthz", handler)
        found, params = router.dispatch(self._request("GET", "/healthz"))
        assert found is handler
        assert params == {}

    def test_param_segment_binds(self):
        router = Router()

        async def handler(request):  # pragma: no cover - never awaited
            return Response()

        router.add("GET", "/jobs/{job_id}", handler)
        _, params = router.dispatch(self._request("GET", "/jobs/job-000001-abc"))
        assert params == {"job_id": "job-000001-abc"}

    def test_unknown_path_is_404(self):
        router = Router()
        with pytest.raises(HTTPError) as err:
            router.dispatch(self._request("GET", "/nope"))
        assert err.value.status == 404

    def test_wrong_method_is_405(self):
        router = Router()

        async def handler(request):  # pragma: no cover - never awaited
            return Response()

        router.add("POST", "/optimize", handler)
        with pytest.raises(HTTPError) as err:
            router.dispatch(self._request("GET", "/optimize"))
        assert err.value.status == 405


class TestResponse:
    def test_json_body_is_deterministic(self):
        a = Response.json({"b": 1, "a": [1.5, None]})
        b = Response.json({"a": [1.5, None], "b": 1})
        assert a.body == b.body
        assert json.loads(a.body) == {"a": [1.5, None], "b": 1}

    def test_json_rejects_nan(self):
        with pytest.raises(ValueError):
            Response.json({"x": float("nan")})

    def test_encode_frames_content_length_and_connection(self):
        wire = Response.json({"ok": True}).encode(keep_alive=True)
        head, _, body = wire.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert b"Connection: keep-alive" in head
        wire_close = Response.json({"ok": True}).encode(keep_alive=False)
        assert b"Connection: close" in wire_close

    def test_encode_carries_extra_headers(self):
        wire = Response.json(
            {}, headers=(("X-Repro-Tier", "map"), ("X-Repro-Cache", "hit"))
        ).encode(keep_alive=True)
        assert b"X-Repro-Tier: map" in wire
        assert b"X-Repro-Cache: hit" in wire

    def test_error_response_shape(self):
        response = HTTPError(404, "no such endpoint").response()
        assert response.status == 404
        payload = json.loads(response.body)
        assert payload["error"]["status"] == 404
        assert "no such endpoint" in payload["error"]["detail"]
