"""Unit tests for the simulation-backed refinement (repro.optimize.refine)."""

from __future__ import annotations

import math

import pytest

from repro import ApplicationWorkload, ResilienceParameters
from repro.optimize import refine_period, simulate_at_periods
from repro.simulation.vectorized import (
    VectorizedBackendError,
    reset_backend_fallback_notes,
)
from repro.utils import MINUTE, WEEK


@pytest.fixture
def parameters() -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=1 * MINUTE,
        library_fraction=0.8,
    )


@pytest.fixture
def workload() -> ApplicationWorkload:
    return ApplicationWorkload.single_epoch(1 * WEEK, 0.8, library_fraction=0.8)


class TestSimulateAtPeriods:
    def test_backends_are_bit_identical(self, parameters, workload):
        kwargs = dict(runs=40, seed=2014)
        vectorized = simulate_at_periods(
            "PurePeriodicCkpt",
            parameters,
            workload,
            {"period": 3000.0},
            backend="vectorized",
            **kwargs,
        )
        event = simulate_at_periods(
            "PurePeriodicCkpt",
            parameters,
            workload,
            {"period": 3000.0},
            backend="event",
            **kwargs,
        )
        assert vectorized == event

    def test_phased_backends_are_bit_identical(self, parameters, workload):
        kwargs = dict(runs=20, seed=2014)
        periods = {"general_period": 3000.0, "library_period": 2500.0}
        vectorized = simulate_at_periods(
            "BiPeriodicCkpt",
            parameters,
            workload,
            periods,
            backend="vectorized",
            **kwargs,
        )
        event = simulate_at_periods(
            "BiPeriodicCkpt",
            parameters,
            workload,
            periods,
            backend="event",
            **kwargs,
        )
        assert vectorized == event

    def test_auto_uses_vectorized_for_phased_protocols(self, parameters, workload):
        summary = simulate_at_periods(
            "BiPeriodicCkpt",
            parameters,
            workload,
            {"general_period": 3000.0, "library_period": 2500.0},
            runs=5,
            seed=1,
            backend="auto",
        )
        assert summary["runs"] == 5
        assert 0.0 <= summary["waste_mean"] <= 1.0

    def test_non_exponential_law_is_vectorized(self, parameters, workload):
        kwargs = dict(
            runs=5,
            seed=1,
            failure_model="weibull",
            failure_params={"shape": 0.7},
        )
        vectorized = simulate_at_periods(
            "PurePeriodicCkpt",
            parameters,
            workload,
            {"period": 3000.0},
            backend="vectorized",
            **kwargs,
        )
        event = simulate_at_periods(
            "PurePeriodicCkpt",
            parameters,
            workload,
            {"period": 3000.0},
            backend="event",
            **kwargs,
        )
        assert vectorized == event

    def test_trace_law_runs_vectorized(self, parameters, workload, capsys):
        reset_backend_fallback_notes()
        kwargs = dict(
            runs=5,
            seed=1,
            failure_model="trace",
            failure_params={"interarrivals": [4000.0, 9000.0, 2500.0]},
        )
        summary = simulate_at_periods(
            "PurePeriodicCkpt",
            parameters,
            workload,
            {"period": 3000.0},
            backend="auto",
            **kwargs,
        )
        assert summary["runs"] == 5
        # Trace replay batches through per-trial cursors: no event-engine
        # fallback, so no stderr note.
        captured = capsys.readouterr()
        assert captured.err == ""
        assert captured.out == ""
        # And the explicit backends agree bit for bit.
        event = simulate_at_periods(
            "PurePeriodicCkpt",
            parameters,
            workload,
            {"period": 3000.0},
            backend="event",
            **kwargs,
        )
        vectorized = simulate_at_periods(
            "PurePeriodicCkpt",
            parameters,
            workload,
            {"period": 3000.0},
            backend="vectorized",
            **kwargs,
        )
        assert vectorized == event == summary


class TestRefinePeriod:
    def test_candidates_include_analytical_optimum(self, parameters, workload):
        refined = refine_period(
            "PurePeriodicCkpt",
            parameters,
            workload,
            runs=30,
            seed=7,
            points=3,
            rounds=1,
        )
        assert refined.best is not None
        scales = [candidate.scale for candidate in refined.candidates]
        assert any(abs(scale - 1.0) < 1e-12 for scale in scales)
        assert refined.computed == len(refined.candidates)
        assert refined.cached == 0

    def test_best_has_lowest_simulated_waste(self, parameters, workload):
        refined = refine_period(
            "PurePeriodicCkpt",
            parameters,
            workload,
            runs=30,
            seed=7,
            points=5,
            rounds=1,
        )
        best = min(c.waste_mean for c in refined.candidates)
        assert refined.best.waste_mean == best
        assert refined.shift == refined.best.scale

    def test_cache_makes_refinement_resumable(self, parameters, workload, tmp_path):
        kwargs = dict(runs=25, seed=3, points=3, rounds=2, cache_dir=tmp_path)
        first = refine_period("PurePeriodicCkpt", parameters, workload, **kwargs)
        assert first.computed > 0 and first.cached == 0
        second = refine_period("PurePeriodicCkpt", parameters, workload, **kwargs)
        assert second.computed == 0
        assert second.cached == len(second.candidates)
        assert second.refined_periods == first.refined_periods
        assert [c.waste_mean for c in second.candidates] == [
            c.waste_mean for c in first.candidates
        ]

    def test_resume_false_recomputes(self, parameters, workload, tmp_path):
        kwargs = dict(runs=10, seed=3, points=3, rounds=1, cache_dir=tmp_path)
        refine_period("PurePeriodicCkpt", parameters, workload, **kwargs)
        recomputed = refine_period(
            "PurePeriodicCkpt", parameters, workload, resume=False, **kwargs
        )
        assert recomputed.computed == len(recomputed.candidates)

    def test_infeasible_point_refines_to_nothing(self, workload):
        hopeless = ResilienceParameters.from_scalars(
            platform_mtbf=600.0, checkpoint=600.0, recovery=600.0, downtime=60.0
        )
        refined = refine_period("PurePeriodicCkpt", hopeless, workload, runs=5, seed=1)
        assert refined.best is None
        assert refined.candidates == ()
        assert math.isnan(refined.refined_periods["period"])
        assert refined.shift == 1.0

    def test_no_knob_protocol_refines_to_nothing(self, parameters, workload):
        refined = refine_period("NoFT", parameters, workload, runs=5, seed=1)
        assert refined.best is None and refined.candidates == ()

    def test_invalid_fan_geometry_rejected(self, parameters, workload):
        with pytest.raises(ValueError):
            refine_period("pure", parameters, workload, points=0)
        with pytest.raises(ValueError):
            refine_period("pure", parameters, workload, span=1.0)

    def test_simulated_optimum_improves_on_worse_periods(
        self, parameters, workload
    ):
        # With enough runs the simulated ranking should not prefer a period
        # far from the analytical optimum's neighbourhood.
        refined = refine_period(
            "PurePeriodicCkpt",
            parameters,
            workload,
            runs=60,
            seed=11,
            span=4.0,
            points=5,
            rounds=1,
        )
        assert 0.25 <= refined.shift <= 4.0
        assert refined.best.waste_mean <= refined.candidates[0].waste_mean

    def test_two_point_fan_stays_in_span(self, parameters, workload):
        # points=2 used to divide by zero; even counts must stay in span.
        from repro.optimize.refine import _scales

        assert _scales(2.0, 2) == (0.5, 1.0)
        assert _scales(2.0, 3) == (0.5, 1.0, 2.0)
        for points in range(1, 8):
            scales = _scales(2.0, points)
            assert len(scales) == points
            assert 1.0 in scales
            assert all(0.5 - 1e-12 <= s <= 2.0 + 1e-12 for s in scales)
        refined = refine_period(
            "pure", parameters, workload, runs=5, seed=1, points=2, rounds=1
        )
        assert len(refined.candidates) == 2

    def test_simulator_kwargs_reach_candidates_and_cache_key(
        self, parameters, workload, tmp_path
    ):
        # Protocol options beyond the periods must shape the simulated
        # candidates and split the cache: a safeguard=True refinement and a
        # default one must not share entries.
        kwargs = dict(runs=8, seed=3, points=3, rounds=1, cache_dir=tmp_path)
        plain = refine_period("abft", parameters, workload, **kwargs)
        assert plain.computed == len(plain.candidates)
        toggled = refine_period(
            "abft",
            parameters,
            workload,
            model_kwargs={"safeguard": True},
            simulator_kwargs={"safeguard": True},
            **kwargs,
        )
        assert toggled.computed == len(toggled.candidates)  # no cache bleed
        resumed = refine_period(
            "abft",
            parameters,
            workload,
            model_kwargs={"safeguard": True},
            simulator_kwargs={"safeguard": True},
            **kwargs,
        )
        assert resumed.computed == 0  # but same-config re-runs do resume

    def test_simulator_kwargs_change_the_simulation(self, parameters, workload):
        from repro.optimize import simulate_at_periods

        base = simulate_at_periods(
            "pure", parameters, workload, {}, runs=10, seed=4, backend="event",
            simulator_kwargs={"period_formula": "young"},
        )
        paper = simulate_at_periods(
            "pure", parameters, workload, {}, runs=10, seed=4, backend="event",
        )
        assert base != paper  # the option reached the simulator
