"""Unit tests for the platform model and MTBF aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.failures import Platform, platform_mtbf
from repro.utils import DAY, GB


class TestPlatformMtbf:
    def test_division(self):
        assert platform_mtbf(86400.0, 24) == 3600.0

    def test_single_node(self):
        assert platform_mtbf(100.0, 1) == 100.0

    def test_rejects_bad_node_count(self):
        with pytest.raises(ValueError):
            platform_mtbf(100.0, 0)
        with pytest.raises(ValueError):
            platform_mtbf(100.0, 2.5)  # type: ignore[arg-type]


class TestPlatform:
    def test_aggregate_mtbf(self):
        platform = Platform(node_count=10_000, node_mtbf=10_000 * DAY)
        assert platform.mtbf == pytest.approx(DAY)

    def test_from_platform_mtbf_inverts(self):
        platform = Platform.from_platform_mtbf(10_000, DAY)
        assert platform.mtbf == pytest.approx(DAY)
        assert platform.node_mtbf == pytest.approx(10_000 * DAY)

    def test_total_memory(self):
        platform = Platform(node_count=100, node_mtbf=DAY, memory_per_node=2 * GB)
        assert platform.total_memory == 200 * GB

    def test_failure_model_mtbf(self):
        platform = Platform(node_count=10, node_mtbf=100.0)
        assert platform.failure_model().mtbf == pytest.approx(10.0)

    def test_scaled_to_preserves_node_characteristics(self):
        base = Platform(node_count=1_000, node_mtbf=DAY, memory_per_node=GB)
        scaled = base.scaled_to(10_000)
        assert scaled.node_mtbf == base.node_mtbf
        assert scaled.mtbf == pytest.approx(base.mtbf / 10.0)
        assert scaled.total_memory == pytest.approx(10 * base.total_memory)

    def test_node_accessor_and_bounds(self):
        platform = Platform(node_count=4, node_mtbf=DAY)
        assert platform.node(3).index == 3
        with pytest.raises(IndexError):
            platform.node(4)

    def test_sample_failed_node_uniform(self, rng):
        platform = Platform(node_count=8, node_mtbf=DAY)
        samples = [platform.sample_failed_node(rng) for _ in range(4000)]
        counts = np.bincount(samples, minlength=8)
        assert counts.min() > 0
        assert counts.max() / counts.min() < 1.6

    def test_validation(self):
        with pytest.raises(ValueError):
            Platform(node_count=0, node_mtbf=DAY)
        with pytest.raises(ValueError):
            Platform(node_count=10, node_mtbf=-1.0)
