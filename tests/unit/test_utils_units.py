"""Unit tests for :mod:`repro.utils.units`."""

from __future__ import annotations

import math

import pytest

from repro.utils import units


class TestConstants:
    def test_minute_is_sixty_seconds(self):
        assert units.MINUTE == 60.0

    def test_hour_day_week_chain(self):
        assert units.HOUR == 60 * units.MINUTE
        assert units.DAY == 24 * units.HOUR
        assert units.WEEK == 7 * units.DAY

    def test_year_is_365_days(self):
        assert units.YEAR == 365 * units.DAY

    def test_data_units_are_decimal(self):
        assert units.GB == 1e9
        assert units.TB == 1000 * units.GB
        assert units.PB == 1000 * units.TB


class TestConversions:
    def test_to_seconds(self):
        assert units.to_seconds(10, units.MINUTE) == 600.0

    def test_to_minutes_roundtrip(self):
        assert units.to_minutes(units.to_seconds(42, units.MINUTE)) == pytest.approx(42)

    def test_to_hours(self):
        assert units.to_hours(7200.0) == pytest.approx(2.0)


class TestFormatDuration:
    def test_seconds(self):
        assert units.format_duration(12.0) == "12.00 s"

    def test_minutes(self):
        assert units.format_duration(90.0) == "1.50 min"

    def test_week(self):
        assert units.format_duration(units.WEEK) == "1.00 w"

    def test_negative(self):
        assert units.format_duration(-120.0).startswith("-2.00")

    def test_sub_second(self):
        assert units.format_duration(0.25) == "0.25 s"

    def test_nan_and_inf_pass_through(self):
        assert units.format_duration(math.nan) == "nan"
        assert units.format_duration(math.inf) == "inf"

    def test_precision(self):
        assert units.format_duration(90.0, precision=0) == "2 min"


class TestFormatBytes:
    def test_bytes(self):
        assert units.format_bytes(512) == "512.00 B"

    def test_gigabytes(self):
        assert units.format_bytes(2.5e9) == "2.50 GB"

    def test_petabytes(self):
        assert units.format_bytes(3e15) == "3.00 PB"

    def test_negative(self):
        assert units.format_bytes(-1e6) == "-1.00 MB"
