"""Unit tests for the tier-1 answer cache and its content addressing."""

from __future__ import annotations

from repro.scenario.spec import ScenarioSpec
from repro.service.cache import AnswerCache, CachedAnswer, answer_key


def scenario() -> dict:
    return {
        "name": "cache-test",
        "platform": {"mtbf": 7200.0, "checkpoint": 600.0},
        "workload": {"total_time": 86400.0},
    }


class TestAnswerKey:
    def test_field_order_does_not_matter(self):
        a = answer_key("/optimize", {"scenario": scenario(), "tier": "auto"})
        b = answer_key("/optimize", {"tier": "auto", "scenario": scenario()})
        assert a == b

    def test_endpoint_is_part_of_the_address(self):
        payload = {"scenario": scenario()}
        assert answer_key("/optimize", payload) != answer_key("/compare", payload)

    def test_value_changes_change_the_address(self):
        base = {"scenario": scenario(), "tier": "auto"}
        other = {"scenario": scenario(), "tier": "map"}
        assert answer_key("/optimize", base) != answer_key("/optimize", other)

    def test_canonicalized_specs_share_an_address(self):
        # Two documents differing only in field order / defaults spelled out
        # canonicalize to the same spec, hence the same answer address.
        spelled_out = dict(scenario(), failures={"model": "exponential"})
        a = ScenarioSpec.from_dict(scenario()).to_dict()
        b = ScenarioSpec.from_dict(spelled_out).to_dict()
        assert answer_key("/optimize", {"scenario": a}) == answer_key(
            "/optimize", {"scenario": b}
        )


class TestAnswerCache:
    def test_miss_then_hit(self):
        cache = AnswerCache(4)
        assert cache.get("k") is None
        cache.put("k", CachedAnswer(body=b"{}", status=200, tier="analytical"))
        hit = cache.get("k")
        assert hit is not None and hit.body == b"{}"
        assert cache.counters()["hits"] == 1
        assert cache.counters()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = AnswerCache(2)
        cache.put("a", CachedAnswer(b"a", 200, "t"))
        cache.put("b", CachedAnswer(b"b", 200, "t"))
        assert cache.get("a") is not None  # refresh "a"; "b" becomes LRU
        cache.put("c", CachedAnswer(b"c", 200, "t"))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.counters()["evictions"] == 1

    def test_bounded_size(self):
        cache = AnswerCache(3)
        for i in range(10):
            cache.put(str(i), CachedAnswer(str(i).encode(), 200, "t"))
        assert len(cache) == 3
        assert cache.counters()["entries"] == 3

    def test_rejects_nonpositive_capacity(self):
        import pytest

        with pytest.raises(ValueError):
            AnswerCache(0)
