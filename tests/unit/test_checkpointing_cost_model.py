"""Unit tests for the checkpoint cost model and the scalar cost bundle."""

from __future__ import annotations

import pytest

from repro.application import DatasetPartition
from repro.checkpointing import CheckpointCostModel, CheckpointCosts, RemoteFileSystemStorage
from repro.failures import Platform
from repro.utils import DAY, GB, MINUTE


class TestCheckpointCosts:
    def test_partial_costs_are_proportional(self):
        costs = CheckpointCosts(
            full_checkpoint=600.0,
            full_recovery=600.0,
            library_fraction=0.8,
            downtime=60.0,
        )
        assert costs.library_checkpoint == pytest.approx(480.0)
        assert costs.remainder_checkpoint == pytest.approx(120.0)
        assert costs.library_recovery == pytest.approx(480.0)
        assert costs.remainder_recovery == pytest.approx(120.0)

    def test_paper_aliases(self):
        costs = CheckpointCostModel.from_scalars(600.0, 300.0, library_fraction=0.5, downtime=60.0)
        assert costs.C == 600.0
        assert costs.R == 300.0
        assert costs.D == 60.0
        assert costs.rho == 0.5

    def test_recovery_defaults_to_checkpoint(self):
        costs = CheckpointCostModel.from_scalars(600.0)
        assert costs.full_recovery == 600.0

    def test_scaled_leaves_downtime(self):
        costs = CheckpointCostModel.from_scalars(100.0, downtime=60.0).scaled(3.0)
        assert costs.full_checkpoint == 300.0
        assert costs.downtime == 60.0

    def test_with_downtime(self):
        costs = CheckpointCostModel.from_scalars(100.0).with_downtime(5.0)
        assert costs.downtime == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointCosts(-1.0, 1.0, 0.5, 1.0)
        with pytest.raises(ValueError):
            CheckpointCosts(1.0, 1.0, 1.5, 1.0)


class TestCheckpointCostModel:
    def test_costs_from_storage(self):
        storage = RemoteFileSystemStorage(write_bandwidth=1000 * GB)
        platform = Platform(
            node_count=10_000, node_mtbf=10_000 * DAY, memory_per_node=60 * GB
        )
        dataset = DatasetPartition(
            total_memory=platform.total_memory, library_fraction=0.8
        )
        model = CheckpointCostModel(storage, downtime=1 * MINUTE)
        costs = model.costs(platform, dataset)
        assert costs.full_checkpoint == pytest.approx(600.0)
        assert costs.full_recovery == pytest.approx(600.0)
        assert costs.library_fraction == 0.8
        assert costs.downtime == 60.0

    def test_properties(self):
        storage = RemoteFileSystemStorage(write_bandwidth=1 * GB)
        model = CheckpointCostModel(storage, downtime=5.0)
        assert model.storage is storage
        assert model.downtime == 5.0
