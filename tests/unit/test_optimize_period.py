"""Unit tests for the numeric period optimizer (repro.optimize.period)."""

from __future__ import annotations

import math

import pytest

from repro import ResilienceParameters
from repro.core.analytical.young_daly import paper_optimal_period
from repro.core.registry import resolve_protocol
from repro.optimize import (
    BracketError,
    bracket_minimum,
    brent_minimize,
    closed_form_periods,
    optimize_period,
)
from repro.utils import MINUTE


class TestBrentMinimize:
    def test_quadratic_minimum(self):
        result = brent_minimize(lambda x: (x - 3.25) ** 2, 0.0, 10.0)
        assert result.converged
        assert result.x == pytest.approx(3.25, rel=1e-8)
        assert result.value == pytest.approx(0.0, abs=1e-12)

    def test_asymmetric_unimodal(self):
        result = brent_minimize(lambda x: x + 4.0 / x, 0.1, 50.0)
        assert result.x == pytest.approx(2.0, rel=1e-7)

    def test_degenerate_interval_raises(self):
        with pytest.raises(BracketError):
            brent_minimize(lambda x: x * x, 2.0, 2.0)

    def test_minimum_at_boundary(self):
        result = brent_minimize(lambda x: x, 1.0, 9.0)
        assert result.x == pytest.approx(1.0, abs=1e-6)


class TestBracketMinimum:
    def test_brackets_the_basin(self):
        objective = lambda x: (math.log(x) - 2.0) ** 2
        a, m, b, value, evaluations = bracket_minimum(objective, 0.01, 1000.0)
        assert a <= math.e**2 <= b
        assert a <= m <= b
        assert value == objective(m)
        assert evaluations >= 3

    def test_plateau_raises(self):
        with pytest.raises(BracketError):
            bracket_minimum(lambda x: 1.0, 0.1, 100.0)

    def test_degenerate_interval_raises(self):
        with pytest.raises(BracketError):
            bracket_minimum(lambda x: x, 5.0, 5.0)
        with pytest.raises(BracketError):
            bracket_minimum(lambda x: x, 5.0, 1.0)


class TestOptimizePeriod:
    def test_pure_periodic_matches_eq11(self, paper_parameters, paper_workload):
        optimum = optimize_period(
            "PurePeriodicCkpt", paper_parameters, paper_workload
        )
        reference = paper_optimal_period(
            paper_parameters.full_checkpoint,
            paper_parameters.platform_mtbf,
            paper_parameters.downtime,
            paper_parameters.full_recovery,
        )
        assert optimum.feasible and optimum.converged
        # The acceptance bar is 0.1%; the optimizer does far better.
        assert optimum.period() == pytest.approx(reference, rel=1e-6)
        assert optimum.relative_error("period") < 1e-3
        assert 0.0 < optimum.waste < 1.0
        assert optimum.prediction is not None
        assert optimum.prediction.waste == optimum.waste

    def test_bi_periodic_both_periods_match(self, paper_parameters, paper_workload):
        optimum = optimize_period(
            "BiPeriodicCkpt", paper_parameters, paper_workload
        )
        assert set(optimum.periods) == {"general_period", "library_period"}
        for keyword in optimum.periods:
            assert optimum.relative_error(keyword) < 1e-3

    def test_accepts_aliases(self, paper_parameters, paper_workload):
        optimum = optimize_period("pure", paper_parameters, paper_workload)
        assert optimum.protocol == "PurePeriodicCkpt"

    def test_no_tunable_period_protocol(self, paper_parameters, paper_workload):
        optimum = optimize_period("NoFT", paper_parameters, paper_workload)
        assert optimum.periods == {}
        assert optimum.evaluations == 1
        # The one-week workload at a two-hour MTBF is hopeless without FT.
        assert optimum.waste == 1.0 and not optimum.feasible

    def test_infeasible_mtbf_below_downtime_plus_recovery(self, paper_workload):
        # mu <= D + R: Equation 11 has no real solution and no period works.
        parameters = ResilienceParameters.from_scalars(
            platform_mtbf=600.0, checkpoint=600.0, recovery=600.0, downtime=60.0
        )
        optimum = optimize_period("PurePeriodicCkpt", parameters, paper_workload)
        assert not optimum.feasible
        assert optimum.waste == 1.0
        assert math.isnan(optimum.periods["period"])
        assert math.isnan(optimum.closed_form["period"])
        assert optimum.prediction is None

    def test_zero_checkpoint_cost_is_flat(self, paper_workload):
        # C = 0: the period is irrelevant (Equation 10 drops it), so the
        # objective is flat and feasible; no closed form exists (Eq. 11
        # requires C > 0).
        parameters = ResilienceParameters.from_scalars(
            platform_mtbf=120 * MINUTE, checkpoint=0.0, recovery=0.0, downtime=60.0
        )
        optimum = optimize_period("PurePeriodicCkpt", parameters, paper_workload)
        assert optimum.flat
        assert optimum.feasible
        assert 0.0 < optimum.waste < 1.0
        assert math.isnan(optimum.closed_form["period"])

    def test_explicit_bounds_and_fixed_kwarg(self, paper_parameters, paper_workload):
        reference = paper_optimal_period(
            paper_parameters.full_checkpoint,
            paper_parameters.platform_mtbf,
            paper_parameters.downtime,
            paper_parameters.full_recovery,
        )
        optimum = optimize_period(
            "PurePeriodicCkpt",
            paper_parameters,
            paper_workload,
            bounds={"period": (reference * 0.5, reference * 2.0)},
        )
        assert optimum.period() == pytest.approx(reference, rel=1e-6)
        # A tunable keyword pinned through model_kwargs is excluded from the
        # search: nothing remains to optimize.
        pinned = optimize_period(
            "PurePeriodicCkpt",
            paper_parameters,
            paper_workload,
            model_kwargs={"period": reference * 2.0},
        )
        assert pinned.periods == {}

    def test_optimum_beats_off_optimal_periods(
        self, paper_parameters, paper_workload
    ):
        optimum = optimize_period(
            "PurePeriodicCkpt", paper_parameters, paper_workload
        )
        model_cls = resolve_protocol("PurePeriodicCkpt").model_cls
        for factor in (0.25, 0.5, 2.0, 4.0):
            off = model_cls(
                paper_parameters, period=optimum.period() * factor
            ).waste(paper_workload)
            assert optimum.waste <= off + 1e-12

    def test_composite_general_period_matches_eq11(
        self, paper_parameters, paper_workload
    ):
        optimum = optimize_period(
            "ABFT&PeriodicCkpt", paper_parameters, paper_workload
        )
        assert set(optimum.periods) == {"general_period"}
        assert optimum.relative_error("general_period") < 1e-3

    def test_to_dict_is_json_compatible(self, paper_parameters, paper_workload):
        import json

        optimum = optimize_period(
            "PurePeriodicCkpt", paper_parameters, paper_workload
        )
        payload = json.dumps(optimum.to_dict())
        assert json.loads(payload)["protocol"] == "PurePeriodicCkpt"

    def test_period_accessor_requires_single_knob(
        self, paper_parameters, paper_workload
    ):
        optimum = optimize_period(
            "BiPeriodicCkpt", paper_parameters, paper_workload
        )
        with pytest.raises(ValueError):
            optimum.period()


class TestClosedFormPeriods:
    def test_known_keywords(self, paper_parameters):
        reference = closed_form_periods(
            paper_parameters, ("period", "general_period", "library_period")
        )
        full = paper_optimal_period(
            paper_parameters.full_checkpoint,
            paper_parameters.platform_mtbf,
            paper_parameters.downtime,
            paper_parameters.full_recovery,
        )
        library = paper_optimal_period(
            paper_parameters.library_checkpoint,
            paper_parameters.platform_mtbf,
            paper_parameters.downtime,
            paper_parameters.full_recovery,
        )
        assert reference["period"] == full
        assert reference["general_period"] == full
        assert reference["library_period"] == library

    def test_unknown_keyword_maps_to_nan(self, paper_parameters):
        assert math.isnan(
            closed_form_periods(paper_parameters, ("exotic_knob",))["exotic_knob"]
        )


class TestRegistryPeriodParameters:
    def test_builtin_discovery(self):
        assert resolve_protocol("PurePeriodicCkpt").period_parameters == ("period",)
        assert resolve_protocol("BiPeriodicCkpt").period_parameters == (
            "general_period",
            "library_period",
        )
        assert resolve_protocol("ABFT&PeriodicCkpt").period_parameters == (
            "general_period",
        )
        assert resolve_protocol("NoFT").period_parameters == ()

    def test_period_formula_is_not_tunable(self):
        for name in ("PurePeriodicCkpt", "BiPeriodicCkpt", "ABFT&PeriodicCkpt"):
            assert "period_formula" not in resolve_protocol(name).period_parameters

    def test_explicit_tunable_override(self):
        from repro.core.registry import ProtocolEntry

        entry = ProtocolEntry(name="X", tunable=("my_period",))
        assert entry.period_parameters == ("my_period",)


class TestDegenerateBounds:
    def test_rejected_up_front(self, paper_parameters, paper_workload):
        for bad in ((100.0, 100.0), (200.0, 100.0)):
            with pytest.raises(ValueError, match="degenerate bounds"):
                optimize_period(
                    "PurePeriodicCkpt",
                    paper_parameters,
                    paper_workload,
                    bounds={"period": bad},
                )
