"""Integration tests: instrumentation across engine, campaign, and CLI.

Two invariants dominate: instrumentation must never change computed
values (bit-identity with tracing on), and the exported span hierarchy
must be explicit -- shard spans carry the campaign span's id even when
they were recorded in pool worker processes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.obs as obs
from repro import ApplicationWorkload, ResilienceParameters
from repro.campaign import SweepJob, SweepRunner
from repro.campaign.executor import ShardedVectorizedExecutor
from repro.core.protocols import PurePeriodicCkptVectorized
from repro.utils import HOUR, MINUTE


@pytest.fixture(autouse=True)
def restore_obs_state():
    """Tests toggle global instrumentation; leave the process as found."""
    was_enabled, was_tracing = obs.enabled(), obs.tracing()
    obs.reset()
    yield
    obs.configure(trace=was_tracing, metrics=was_enabled)
    obs.reset()


def _parameters() -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=60.0,
        library_fraction=0.8,
    )


def _workload() -> ApplicationWorkload:
    return ApplicationWorkload.single_epoch(6 * HOUR, 0.8, library_fraction=0.8)


def _engine() -> PurePeriodicCkptVectorized:
    return PurePeriodicCkptVectorized(_parameters(), _workload())


class TestEnginePhaseMetrics:
    def test_disabled_engine_records_nothing(self):
        obs.configure(metrics=False, trace=False)
        _engine().run_trials(20, seed=7)
        phases = obs.global_registry().get("repro_engine_phase_seconds_total")
        assert phases is None or phases.values() == {}

    def test_enabled_engine_records_all_four_phases(self):
        obs.configure(metrics=True)
        _engine().run_trials(20, seed=7)
        phases = obs.catalog.family("repro_engine_phase_seconds_total")
        recorded = {key[0] for key in phases.values()}
        assert recorded == {"compile", "sample", "execute", "gather"}
        assert all(value >= 0.0 for value in phases.values().values())
        runs = obs.catalog.family("repro_engine_runs_total")
        trials = obs.catalog.family("repro_engine_trials_total")
        assert sum(runs.values().values()) == 1.0
        assert sum(trials.values().values()) == 20.0

    def test_instrumentation_is_bit_identical(self):
        obs.configure(metrics=False, trace=False)
        plain = _engine().run_trials(30, seed=11)
        obs.configure(trace=True)
        with obs.span("test-root"):
            traced = _engine().run_trials(30, seed=11)
        assert traced == plain

    def test_engine_span_nests_and_carries_phase_timings(self):
        obs.configure(trace=True)
        with obs.span("campaign") as campaign:
            _engine().run_trials(10, seed=3)
        records = {r.name: r for r in obs.global_tracer().records()}
        engine_span = records["engine"]
        assert engine_span.parent_id == records["campaign"].span_id
        assert engine_span.args["trials"] == 10
        for phase in ("sample_seconds", "execute_seconds", "gather_seconds"):
            assert engine_span.args[phase] >= 0.0


class TestShardedCampaignTracing:
    def _assert_hierarchy(self, records, shards):
        campaigns = [r for r in records if r.name == "campaign"]
        shard_spans = [r for r in records if r.name == "shard"]
        engine_spans = [r for r in records if r.name == "engine"]
        assert len(campaigns) == 1
        assert len(shard_spans) == shards
        assert len(engine_spans) == shards
        campaign = campaigns[0]
        assert all(s.parent_id == campaign.span_id for s in shard_spans)
        shard_ids = {s.span_id for s in shard_spans}
        assert all(e.parent_id in shard_ids for e in engine_spans)
        return campaign

    def test_serial_backend_nests_in_process(self):
        obs.configure(trace=True)
        executor = ShardedVectorizedExecutor(workers=2, backend="serial")
        executor.run(_engine(), runs=40, seed=5)
        self._assert_hierarchy(obs.global_tracer().records(), shards=2)

    def test_process_backend_reparents_worker_spans(self):
        obs.configure(trace=True)
        executor = ShardedVectorizedExecutor(workers=4, backend="process")
        table = executor.run(_engine(), runs=40, seed=5)
        records = obs.global_tracer().records()
        campaign = self._assert_hierarchy(records, shards=4)

        obs.configure(metrics=False, trace=False)
        serial = ShardedVectorizedExecutor(workers=1, backend="serial").run(
            _engine(), runs=40, seed=5
        )
        assert table == serial  # tracing never changes computed values

        doc = obs.global_tracer().chrome_trace()
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        shard_events = [e for e in events if e["name"] == "shard"]
        assert len(shard_events) == 4
        assert all(
            e["args"]["parent_id"] == campaign.span_id for e in shard_events
        )

    def test_worker_drain_does_not_duplicate_parent_history(self):
        # Forked pool workers inherit the parent tracer's records; a shard
        # must ship home only its own spans or repeated campaigns would
        # re-ingest (and exponentially duplicate) the parent's history.
        obs.configure(trace=True)
        executor = ShardedVectorizedExecutor(workers=2, backend="process")
        executor.run(_engine(), runs=20, seed=1)
        first = len(obs.global_tracer().records())
        executor.run(_engine(), runs=20, seed=1)
        second = len(obs.global_tracer().records())
        assert second == 2 * first

    def test_shard_counter_when_metrics_only(self):
        obs.configure(metrics=True, trace=False)
        executor = ShardedVectorizedExecutor(workers=2, backend="serial")
        executor.run(_engine(), runs=20, seed=2)
        shards = obs.catalog.family("repro_campaign_shards_total")
        assert shards.value(backend="serial") == 2.0
        assert obs.global_tracer().records() == []


class TestSweepPointMetrics:
    def _job(self, *, simulate: bool = False) -> SweepJob:
        return SweepJob(
            parameters=_parameters(),
            application_time=1 * HOUR,
            mtbf_values=(3600.0, 7200.0),
            alpha_values=(0.5,),
            simulate=simulate,
            simulation_runs=8,
            seed=3,
        )

    def test_computed_and_cached_outcomes(self, tmp_path):
        obs.configure(metrics=True)
        runner = SweepRunner(cache_dir=str(tmp_path), resume=True)
        runner.run(self._job())
        points = obs.catalog.family("repro_sweep_points_total")
        assert points.value(outcome="computed") == 2.0
        assert points.value(outcome="cached") == 0.0
        runner.run(self._job())
        assert points.value(outcome="computed") == 2.0
        assert points.value(outcome="cached") == 2.0


class TestCliObservability:
    def _scenario_file(self, tmp_path: Path) -> Path:
        spec = {
            "name": "obs-cli",
            "platform": {
                "mtbf": 7200,
                "checkpoint": 600,
                "downtime": 60,
                "library_fraction": 0.8,
                "abft_overhead": 1.03,
            },
            "workload": {"total_time": 86400, "alpha": 0.8},
            "sweep": {"mtbf_values": [7200.0], "alpha_values": [0.8]},
            "simulation": {
                "validate": True,
                "runs": 8,
                "seed": 3,
                "backend": "vectorized",
            },
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec))
        return path

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.trace.json"
        code = main(
            [
                "scenario",
                "run",
                str(self._scenario_file(tmp_path)),
                "--workers",
                "2",
                "--trace-out",
                str(out),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "event=trace-written" in err
        doc = json.loads(out.read_text())
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        names = {e["name"] for e in events}
        assert {"sweep", "sweep-point", "campaign", "shard", "engine"} <= names
        sweeps = [e for e in events if e["name"] == "sweep"]
        assert len(sweeps) == 1
        points = [e for e in events if e["name"] == "sweep-point"]
        assert all(
            p["args"]["parent_id"] == sweeps[0]["args"]["span_id"]
            for p in points
        )

    def test_trace_out_restores_instrumentation_flags(self, tmp_path, capsys):
        from repro.cli import main

        obs.configure(metrics=False, trace=False)
        out = tmp_path / "run.trace.json"
        main(
            [
                "scenario",
                "run",
                str(self._scenario_file(tmp_path)),
                "--trace-out",
                str(out),
            ]
        )
        capsys.readouterr()
        assert not obs.enabled() and not obs.tracing()

    def test_obs_dump_emits_full_catalog_json(self, capsys):
        from repro.cli import main

        assert main(["obs", "dump"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for name in obs.family_names(obs.SCOPE_GLOBAL):
            assert name in payload["families"]

    def test_obs_dump_prometheus(self, capsys):
        from repro.cli import main

        assert main(["obs", "dump", "--prometheus"]) == 0
        text = capsys.readouterr().out
        for name in obs.family_names(obs.SCOPE_GLOBAL):
            assert f"# TYPE {name} " in text

    def test_workers_note_is_structured(self, capsys):
        from repro.cli import _resolve_workers

        resolved = _resolve_workers(2, 100)
        err = capsys.readouterr().err
        assert resolved == 2
        assert "note: event=workers-resolved workers=2" in err
        assert "runs=100" in err


class TestDocsStayInSync:
    def test_every_cataloged_family_is_documented(self):
        experiments = Path(__file__).resolve().parents[2] / "EXPERIMENTS.md"
        text = experiments.read_text(encoding="utf-8")
        for name in obs.family_names():
            assert name in text, f"{name} missing from EXPERIMENTS.md"
