"""Unit tests for the reproducible random-stream factory."""

from __future__ import annotations

import pytest

from repro.simulation import RandomStreams


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(seed=1)
        assert streams.get("failures") is streams.get("failures")

    def test_different_names_are_independent_objects(self):
        streams = RandomStreams(seed=1)
        assert streams.get("a") is not streams.get("b")

    def test_reproducible_across_instances(self):
        a = RandomStreams(seed=1234).get("failures")
        b = RandomStreams(seed=1234).get("failures")
        assert a.random() == b.random()

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("failures")
        b = RandomStreams(seed=2).get("failures")
        assert a.random() != b.random()

    def test_child_families_reproducible(self):
        a = RandomStreams(seed=7).child(3).get("failures")
        b = RandomStreams(seed=7).child(3).get("failures")
        assert a.random() == b.random()

    def test_child_families_independent(self):
        parent = RandomStreams(seed=7)
        a = parent.child(0).get("failures")
        b = parent.child(1).get("failures")
        assert a.random() != b.random()

    def test_child_order_does_not_matter(self):
        parent = RandomStreams(seed=11)
        late = parent.child(5).get("x").random()
        other_parent = RandomStreams(seed=11)
        other_parent.child(0)  # create a different child first
        assert other_parent.child(5).get("x").random() == late

    def test_generator_for_trial_shortcut(self):
        parent = RandomStreams(seed=3)
        assert (
            parent.generator_for_trial(2).random()
            == RandomStreams(seed=3).child(2).get("failures").random()
        )

    def test_negative_child_index_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=1).child(-1)

    def test_seed_property(self):
        assert RandomStreams(seed=42).seed == 42
        assert RandomStreams().seed is None


class TestGeneratorForTrialFastPath:
    """The direct SeedSequence derivation must stay bit-identical to the
    historical spawn-based one -- every cached sweep and pinned regression
    value depends on this mapping."""

    def test_matches_spawn_based_derivation(self):
        from repro.simulation.rng import RandomStreams

        streams = RandomStreams(seed=2014)
        for index in (0, 1, 17, 4095):
            fast = streams.generator_for_trial(index)
            slow = streams.child(index).get("failures")
            assert fast.random() == slow.random()

    def test_name_does_not_change_the_first_stream(self):
        from repro.simulation.rng import RandomStreams

        streams = RandomStreams(seed=7)
        a = streams.generator_for_trial(3, "failures").random()
        b = streams.generator_for_trial(3, "anything").random()
        assert a == b

    def test_negative_index_rejected(self):
        from repro.simulation.rng import RandomStreams

        with pytest.raises(ValueError):
            RandomStreams(seed=1).generator_for_trial(-1)

    def test_seed_none_still_nondeterministic(self):
        from repro.simulation.rng import RandomStreams

        streams = RandomStreams(seed=None)
        a = streams.generator_for_trial(0).random()
        b = streams.generator_for_trial(0).random()
        assert a != b


class TestTrialSeedSequenceMemo:
    """The per-campaign SeedSequence memo reused across sweep points."""

    def test_bit_identical_to_generator_for_trial(self):
        import numpy as np

        from repro.simulation.rng import RandomStreams, trial_seed_sequences

        streams = RandomStreams(seed=2014)
        sequences = trial_seed_sequences(2014, 1000)
        for index in (0, 1, 17, 999):
            cached = np.random.default_rng(sequences[index]).random(4)
            direct = streams.generator_for_trial(index).random(4)
            assert (cached == direct).all()

    def test_memo_is_shared_and_grows(self):
        from repro.simulation.rng import trial_seed_sequences

        short = trial_seed_sequences(424242, 4)
        longer = trial_seed_sequences(424242, 10)
        assert longer is short  # one growing list per root seed
        assert len(longer) >= 10
        again = trial_seed_sequences(424242, 10)
        assert again is longer
        assert again[3] is short[3]  # entries are not rebuilt

    def test_negative_count_rejected(self):
        from repro.simulation.rng import trial_seed_sequences

        with pytest.raises(ValueError):
            trial_seed_sequences(1, -1)

    def test_distinct_seeds_have_distinct_streams(self):
        import numpy as np

        from repro.simulation.rng import trial_seed_sequences

        a = np.random.default_rng(trial_seed_sequences(1, 1)[0]).random()
        b = np.random.default_rng(trial_seed_sequences(2, 1)[0]).random()
        assert a != b

    def test_campaigns_reuse_across_sweep_points(self):
        """Two vectorized sweep points with one seed share the derivations."""
        from repro.simulation.rng import _TRIAL_SEQUENCES, trial_seed_sequences

        trial_seed_sequences(777, 64)
        before = len(_TRIAL_SEQUENCES[777])
        trial_seed_sequences(777, 64)
        assert len(_TRIAL_SEQUENCES[777]) == before

    def test_oversized_campaign_does_not_grow_the_memo(self):
        import numpy as np

        from repro.simulation.rng import (
            _TRIAL_SEQUENCES,
            _TRIAL_SEQUENCES_MAX_LENGTH,
            trial_seed_sequences,
        )

        count = _TRIAL_SEQUENCES_MAX_LENGTH + 5
        oversized = trial_seed_sequences(31337, count)
        assert len(oversized) == count
        assert len(_TRIAL_SEQUENCES[31337]) == _TRIAL_SEQUENCES_MAX_LENGTH
        # The transient tail is still the exact per-trial derivation.
        direct = np.random.SeedSequence(entropy=31337, spawn_key=(count - 1, 0))
        a = np.random.default_rng(oversized[-1]).random()
        b = np.random.default_rng(direct).random()
        assert a == b
