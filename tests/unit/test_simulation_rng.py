"""Unit tests for the reproducible random-stream factory."""

from __future__ import annotations

import pytest

from repro.simulation import RandomStreams


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(seed=1)
        assert streams.get("failures") is streams.get("failures")

    def test_different_names_are_independent_objects(self):
        streams = RandomStreams(seed=1)
        assert streams.get("a") is not streams.get("b")

    def test_reproducible_across_instances(self):
        a = RandomStreams(seed=1234).get("failures")
        b = RandomStreams(seed=1234).get("failures")
        assert a.random() == b.random()

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("failures")
        b = RandomStreams(seed=2).get("failures")
        assert a.random() != b.random()

    def test_child_families_reproducible(self):
        a = RandomStreams(seed=7).child(3).get("failures")
        b = RandomStreams(seed=7).child(3).get("failures")
        assert a.random() == b.random()

    def test_child_families_independent(self):
        parent = RandomStreams(seed=7)
        a = parent.child(0).get("failures")
        b = parent.child(1).get("failures")
        assert a.random() != b.random()

    def test_child_order_does_not_matter(self):
        parent = RandomStreams(seed=11)
        late = parent.child(5).get("x").random()
        other_parent = RandomStreams(seed=11)
        other_parent.child(0)  # create a different child first
        assert other_parent.child(5).get("x").random() == late

    def test_generator_for_trial_shortcut(self):
        parent = RandomStreams(seed=3)
        assert (
            parent.generator_for_trial(2).random()
            == RandomStreams(seed=3).child(2).get("failures").random()
        )

    def test_negative_child_index_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=1).child(-1)

    def test_seed_property(self):
        assert RandomStreams(seed=42).seed == 42
        assert RandomStreams().seed is None


class TestGeneratorForTrialFastPath:
    """The direct SeedSequence derivation must stay bit-identical to the
    historical spawn-based one -- every cached sweep and pinned regression
    value depends on this mapping."""

    def test_matches_spawn_based_derivation(self):
        from repro.simulation.rng import RandomStreams

        streams = RandomStreams(seed=2014)
        for index in (0, 1, 17, 4095):
            fast = streams.generator_for_trial(index)
            slow = streams.child(index).get("failures")
            assert fast.random() == slow.random()

    def test_name_does_not_change_the_first_stream(self):
        from repro.simulation.rng import RandomStreams

        streams = RandomStreams(seed=7)
        a = streams.generator_for_trial(3, "failures").random()
        b = streams.generator_for_trial(3, "anything").random()
        assert a == b

    def test_negative_index_rejected(self):
        from repro.simulation.rng import RandomStreams

        with pytest.raises(ValueError):
            RandomStreams(seed=1).generator_for_trial(-1)

    def test_seed_none_still_nondeterministic(self):
        from repro.simulation.rng import RandomStreams

        streams = RandomStreams(seed=None)
        a = streams.generator_for_trial(0).random()
        b = streams.generator_for_trial(0).random()
        assert a != b
