"""Unit tests for :mod:`repro.utils.tables`."""

from __future__ import annotations

import csv

import pytest

from repro.utils.tables import Table, format_table, write_csv


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_boolean_rendering(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text


class TestTable:
    def test_add_and_column(self):
        table = Table(["nodes", "waste"])
        table.add_row([1000, 0.1])
        table.add_row([2000, 0.2])
        assert table.column("waste") == [0.1, 0.2]
        assert len(table) == 2

    def test_unknown_column(self):
        table = Table(["a"])
        with pytest.raises(KeyError):
            table.column("b")

    def test_row_validation(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_to_csv_roundtrip(self):
        table = Table(["x", "y"])
        table.extend([[1, 2], [3, 4]])
        rows = list(csv.reader(table.to_csv().splitlines()))
        assert rows[0] == ["x", "y"]
        assert rows[1] == ["1", "2"]

    def test_write_creates_file(self, tmp_path):
        table = Table(["x"])
        table.add_row([1])
        path = table.write(tmp_path / "sub" / "out.csv")
        assert path.exists()
        assert "x" in path.read_text()


class TestWriteCsv:
    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "data.csv", ["h"], [[1], [2]])
        content = path.read_text().strip().splitlines()
        assert content[0] == "h"
        assert content[1:] == ["1", "2"]
