"""Unit tests for running scenarios end-to-end and the validation guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocols import BiPeriodicCkptSimulator, PurePeriodicCkptSimulator
from repro.experiments.validation import (
    NonExponentialValidationError,
    validate_configuration,
    validate_spec,
)
from repro.failures import (
    LogNormalFailureModel,
    TraceFailureModel,
    WeibullFailureModel,
)
from repro.scenario import (
    ExponentialAssumptionWarning,
    Scenario,
    run_scenario,
    scenario_sweep_job,
)
from repro.utils import HOUR, MINUTE


def quick_scenario(**failure):
    builder = Scenario.quick().with_simulation(runs=20, seed=7)
    if failure:
        builder = builder.with_failures(**failure)
    return builder.build()


class TestRunScenario:
    def test_model_only_run(self):
        spec = Scenario.quick().build()
        result = run_scenario(spec)
        assert len(result.points) == 12
        assert not result.validated
        assert all(not p.simulated_waste for p in result.points)

    def test_validated_run_has_sim_columns(self):
        result = run_scenario(quick_scenario())
        assert result.validated
        for point in result.points:
            assert set(point.simulated_waste) == set(point.model_waste)

    def test_overrides_replace_spec_simulation(self):
        spec = Scenario.quick().build()
        result = run_scenario(spec, validate=True, runs=5, seed=1)
        assert result.spec.simulation.validate
        assert result.spec.simulation.runs == 5
        assert result.spec.simulation.seed == 1

    def test_non_exponential_validation_warns(self):
        spec = quick_scenario(model="weibull", shape=0.7)
        with pytest.warns(ExponentialAssumptionWarning):
            result = run_scenario(spec)
        assert result.validated

    def test_seed_stable_under_weibull(self):
        spec = quick_scenario(model="weibull", shape=0.7)
        with pytest.warns(ExponentialAssumptionWarning):
            first = run_scenario(spec)
            second = run_scenario(spec)
        for a, b in zip(first.points, second.points):
            assert a.simulated_waste == b.simulated_waste

    def test_weibull_differs_from_exponential(self):
        exponential = run_scenario(quick_scenario())
        with pytest.warns(ExponentialAssumptionWarning):
            weibull = run_scenario(quick_scenario(model="weibull", shape=0.5))
        diffs = [
            abs(a.simulated_waste[p] - b.simulated_waste[p])
            for a, b in zip(exponential.points, weibull.points)
            for p in a.simulated_waste
            if a.alpha > 0 or True
        ]
        assert max(diffs) > 1e-3

    def test_sweep_job_carries_failure_spec(self):
        spec = quick_scenario(model="lognormal", sigma=1.5)
        job = scenario_sweep_job(spec)
        assert job.failure_model == "lognormal"
        assert dict(job.failure_params) == {"sigma": 1.5}
        model = job.point_failure_model(3600.0)
        assert isinstance(model, LogNormalFailureModel)
        assert model.mtbf == 3600.0

    def test_exponential_job_uses_default_stream(self):
        job = scenario_sweep_job(Scenario.quick().build())
        assert job.point_failure_model(3600.0) is None

    def test_exponential_alias_canonicalized(self):
        # "exp" must hit the same fast path (and cache keys) as "exponential".
        spec = quick_scenario(model="exp")
        job = scenario_sweep_job(spec)
        assert job.failure_model == "exponential"
        assert job.point_failure_model(3600.0) is None
        assert "failure_model" not in job.point_key(3600.0, 0.5)

    def test_unknown_protocol_message_suggests(self):
        from repro.campaign import SweepJob
        from repro.core.registry import UnknownProtocolError

        spec = Scenario.quick().build()
        with pytest.raises(
            UnknownProtocolError, match="unknown protocols"
        ) as excinfo:
            SweepJob(
                parameters=spec.parameters(),
                application_time=spec.workload.total_time,
                mtbf_values=(3600.0,),
                alpha_values=(0.5,),
                protocols=("BiPeriodikCkpt",),
            )
        assert "did you mean" in str(excinfo.value)

    def test_trace_sweep_thread_pool_matches_serial(self):
        # Stateful (trace) models must not share replay cursors between
        # concurrently simulated trials.
        from repro.campaign import SweepRunner

        spec = (
            Scenario.quick()
            .with_failures("trace", interarrivals=[1800.0, 5400.0, 900.0])
            .with_simulation(runs=16, seed=11)
            .build()
        )
        with pytest.warns(ExponentialAssumptionWarning):
            serial = run_scenario(spec)
        # Direct campaign-layer run on two worker threads.
        threaded = SweepRunner(workers=2, backend="thread").run(
            scenario_sweep_job(spec)
        )
        for a, b in zip(serial.points, threaded.points):
            assert a.simulated_waste == b.simulated_waste

    def test_table_and_csv(self, tmp_path):
        result = run_scenario(Scenario.quick().build())
        assert "quick" in result.to_table().to_text()
        assert result.write_csv(tmp_path / "scenario.csv").exists()

    def test_cache_resume(self, tmp_path):
        spec = quick_scenario()
        first = run_scenario(spec, cache_dir=tmp_path)
        second = run_scenario(spec, cache_dir=tmp_path)
        assert first.sweep.computed_points == 12
        assert second.sweep.cached_points == 12
        for a, b in zip(first.points, second.points):
            assert a.simulated_waste == b.simulated_waste


class TestSeedStableSimulators:
    """Same seed -> identical traces for every non-exponential law."""

    @pytest.fixture
    def workload_params(self, paper_parameters):
        from repro import ApplicationWorkload

        workload = ApplicationWorkload.single_epoch(
            12 * HOUR, 0.8, library_fraction=0.8
        )
        return paper_parameters, workload

    @pytest.mark.parametrize(
        ("make_model", "seed_sensitive"),
        [
            (lambda mtbf: WeibullFailureModel(mtbf, shape=0.7), True),
            (lambda mtbf: LogNormalFailureModel(mtbf, sigma=1.2), True),
            # Trace replay is deterministic by construction: every seed
            # replays the same recorded failures.
            (
                lambda mtbf: TraceFailureModel([30 * MINUTE, 90 * MINUTE, 2 * HOUR]),
                False,
            ),
        ],
        ids=["weibull", "lognormal", "trace"],
    )
    def test_same_seed_same_trace(self, workload_params, make_model, seed_sensitive):
        parameters, workload = workload_params
        model = make_model(parameters.platform_mtbf)
        simulator = PurePeriodicCkptSimulator(
            parameters, workload, failure_model=model
        )
        first = simulator.simulate(seed=42)
        second = simulator.simulate(seed=42)
        assert first.makespan == second.makespan
        assert first.failure_count == second.failure_count
        third = simulator.simulate(seed=43)
        if seed_sensitive:
            assert (third.makespan, third.failure_count) != (
                first.makespan,
                first.failure_count,
            )
        else:
            assert third.makespan == first.makespan

    def test_trace_model_reset_between_runs(self, workload_params):
        parameters, workload = workload_params
        model = TraceFailureModel([30 * MINUTE, 90 * MINUTE], cycle=True)
        simulator = BiPeriodicCkptSimulator(
            parameters, workload, failure_model=model
        )
        rng = np.random.default_rng(0)
        first = simulator.simulate(rng=rng)
        # A second run must replay the trace from the start, not continue it.
        second = simulator.simulate(rng=np.random.default_rng(0))
        assert first.failure_count == second.failure_count
        assert first.makespan == second.makespan


class TestValidationGuard:
    def test_exponential_default_unchanged(self, paper_parameters, small_workload):
        point = validate_configuration(
            "PurePeriodicCkpt", paper_parameters, small_workload, runs=20
        )
        assert point.has_model_column
        assert abs(point.difference) < 0.2

    def test_non_exponential_raises_by_default(
        self, paper_parameters, small_workload
    ):
        model = WeibullFailureModel(paper_parameters.platform_mtbf, shape=0.7)
        with pytest.raises(NonExponentialValidationError, match="exponential"):
            validate_configuration(
                "PurePeriodicCkpt",
                paper_parameters,
                small_workload,
                runs=10,
                failure_model=model,
            )

    def test_non_exponential_warn_skips_model_column(
        self, paper_parameters, small_workload
    ):
        model = WeibullFailureModel(paper_parameters.platform_mtbf, shape=0.7)
        with pytest.warns(UserWarning, match="NaN"):
            point = validate_configuration(
                "PurePeriodicCkpt",
                paper_parameters,
                small_workload,
                runs=10,
                failure_model=model,
                on_non_exponential="warn",
            )
        assert not point.has_model_column
        assert np.isnan(point.model_waste)
        assert 0.0 <= point.simulated_waste <= 1.0

    def test_explicit_exponential_model_accepted(
        self, paper_parameters, small_workload
    ):
        from repro import ExponentialFailureModel

        point = validate_configuration(
            "bi",
            paper_parameters,
            small_workload,
            runs=10,
            failure_model=ExponentialFailureModel(paper_parameters.platform_mtbf),
        )
        assert point.protocol == "BiPeriodicCkpt"
        assert point.has_model_column

    def test_bad_mode_rejected(self, paper_parameters, small_workload):
        with pytest.raises(ValueError, match="on_non_exponential"):
            validate_configuration(
                "pure",
                paper_parameters,
                small_workload,
                on_non_exponential="ignore",
            )

    def test_validate_spec_raises_for_non_exponential(self):
        spec = quick_scenario(model="weibull", shape=0.7)
        with pytest.raises(NonExponentialValidationError):
            validate_spec(spec, runs=10)

    def test_weak_scaling_spec_reproduces_harness(self):
        # The saved per-node spec must yield the same ABFT waste as the
        # weak-scaling harness (the per_epoch=False override rides in
        # model_params, not in out-of-band Python).
        from repro.experiments import (
            paper_figure8_scenario,
            run_weak_scaling,
            weak_scaling_spec,
        )

        scenario = paper_figure8_scenario()
        harness = run_weak_scaling(scenario, node_counts=(10_000,))
        spec = weak_scaling_spec(scenario, 10_000)
        bound = spec.resolve("ABFT&PeriodicCkpt")
        waste = bound.model.evaluate(spec.application_workload()).waste
        assert waste == harness.rows[0].waste["ABFT&PeriodicCkpt"]

    def test_validate_spec_exponential_path(self):
        spec = quick_scenario()
        point = validate_spec(spec, "abft", runs=10)
        assert point.protocol == "ABFT&PeriodicCkpt"
        assert point.has_model_column


class TestOptimizeScenario:
    """The ScenarioSpec-consuming entry point of the strategy advisor."""

    def test_optimizes_every_grid_point(self):
        from repro.scenario import optimize_scenario

        spec = quick_scenario()
        result = optimize_scenario(spec)
        assert len(result.points) == len(spec.mtbf_axis) * len(spec.alpha_axis)
        for point in result.points:
            assert set(point.optima) == set(spec.canonical_protocols)
            assert point.winner in spec.canonical_protocols
            best = min(point.optima.values(), key=lambda o: o.waste)
            assert point.optima[point.winner].waste == best.waste

    def test_numeric_periods_match_closed_forms(self):
        from repro.scenario import optimize_scenario

        spec = quick_scenario().replace(protocols=("PurePeriodicCkpt",))
        result = optimize_scenario(spec)
        for point in result.points:
            optimum = point.optima["PurePeriodicCkpt"]
            if optimum.feasible and not optimum.flat:
                assert optimum.relative_error("period") < 1e-3

    def test_protocol_override_and_aliases(self):
        from repro.scenario import optimize_scenario

        result = optimize_scenario(quick_scenario(), protocols=("pure", "none"))
        assert result.spec.canonical_protocols == ("PurePeriodicCkpt", "NoFT")
        assert all(
            set(point.optima) == {"PurePeriodicCkpt", "NoFT"}
            for point in result.points
        )

    def test_honours_model_params(self):
        from repro.scenario import optimize_scenario

        spec = quick_scenario().replace(
            protocols=("ABFT&PeriodicCkpt",),
            model_params=(("ABFT&PeriodicCkpt", (("per_epoch", False),)),),
        )
        result = optimize_scenario(spec)  # must not raise: kwargs forwarded
        assert result.points

    def test_table_and_csv(self, tmp_path):
        from repro.scenario import optimize_scenario

        result = optimize_scenario(quick_scenario())
        text = result.to_table().to_text()
        assert "winner" in text and "opt_waste[PurePeriodicCkpt]" in text
        path = result.write_csv(tmp_path / "optimized.csv")
        assert path.exists()
        assert "opt_period[PurePeriodicCkpt]" in path.read_text()

    def test_winner_grid_shape(self):
        from repro.scenario import optimize_scenario

        spec = quick_scenario()
        grid = optimize_scenario(spec).winner_grid()
        assert set(grid) == {
            (m, a) for m in spec.mtbf_axis for a in spec.alpha_axis
        }
