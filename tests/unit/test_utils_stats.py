"""Unit tests for :mod:`repro.utils.stats`."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.utils.stats import (
    RunningStatistics,
    confidence_interval,
    summarize,
)


class TestRunningStatistics:
    def test_empty_statistics_are_nan(self):
        acc = RunningStatistics()
        assert acc.count == 0
        assert math.isnan(acc.mean)
        assert math.isnan(acc.std)
        assert math.isnan(acc.minimum)

    def test_mean_and_variance(self):
        acc = RunningStatistics()
        acc.extend([1.0, 2.0, 3.0, 4.0])
        assert acc.mean == pytest.approx(2.5)
        assert acc.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))

    def test_extrema(self):
        acc = RunningStatistics()
        acc.extend([3.0, -1.0, 7.0])
        assert acc.minimum == -1.0
        assert acc.maximum == 7.0

    def test_matches_numpy_on_random_data(self):
        data = np.random.default_rng(0).normal(size=500)
        acc = RunningStatistics()
        acc.extend(data.tolist())
        assert acc.mean == pytest.approx(float(np.mean(data)))
        assert acc.std == pytest.approx(float(np.std(data, ddof=1)))

    def test_merge_equivalent_to_single_stream(self):
        data = np.random.default_rng(1).normal(size=200)
        left, right = RunningStatistics(), RunningStatistics()
        left.extend(data[:80].tolist())
        right.extend(data[80:].tolist())
        left.merge(right)
        reference = RunningStatistics()
        reference.extend(data.tolist())
        assert left.count == reference.count
        assert left.mean == pytest.approx(reference.mean)
        assert left.variance == pytest.approx(reference.variance)

    def test_merge_with_empty(self):
        acc = RunningStatistics()
        acc.extend([1.0, 2.0])
        acc.merge(RunningStatistics())
        assert acc.count == 2

    def test_to_summary_contains_interval(self):
        acc = RunningStatistics()
        acc.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        summary = acc.to_summary()
        assert summary.ci_low < summary.mean < summary.ci_high
        assert summary.count == 5

    def test_single_sample_summary(self):
        summary = summarize([2.0])
        assert summary.mean == 2.0
        assert math.isnan(summary.ci_half_width)


class TestConfidenceInterval:
    def test_empty(self):
        low, high = confidence_interval([])
        assert math.isnan(low) and math.isnan(high)

    def test_single_sample_degenerates(self):
        assert confidence_interval([3.0]) == (3.0, 3.0)

    def test_interval_contains_mean(self):
        data = [1.0, 2.0, 3.0, 4.0]
        low, high = confidence_interval(data)
        assert low < np.mean(data) < high

    def test_wider_at_higher_confidence(self):
        data = list(np.random.default_rng(2).normal(size=50))
        low95, high95 = confidence_interval(data, 0.95)
        low99, high99 = confidence_interval(data, 0.99)
        assert (high99 - low99) > (high95 - low95)

    def test_coverage_on_synthetic_data(self):
        # The 95% interval on the mean of 200 N(0,1) samples should contain 0
        # most of the time; check a deterministic batch.
        rng = np.random.default_rng(7)
        hits = 0
        for _ in range(50):
            data = rng.normal(size=200)
            low, high = confidence_interval(data.tolist(), 0.95)
            hits += int(low <= 0.0 <= high)
        assert hits >= 44  # ~95% coverage with generous slack


class TestSummaryString:
    def test_str_contains_mean(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert "2" in str(summary)
