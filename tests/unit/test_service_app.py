"""Full-stack advisor-service tests over a live (threaded) server.

These drive real HTTP round-trips through :class:`ServiceThread`: tier
routing and the fallback chain, the byte-identity contract of cache hits,
content-addressed background jobs, error mapping and the /healthz counters.
"""

from __future__ import annotations

import copy

import pytest

from repro.optimize.regime import RegimeMapSpec, compute_regime_map
from repro.service import create_app
from repro.service.testing import ServiceThread
from repro.service.tiers import RegimeSurface

NODES = 1000
PLATFORM_MTBFS = (21600.0, 43200.0, 86400.0, 172800.0)
TOTAL_TIME = 360000.0


def scenario(mtbf: float = 86400.0) -> dict:
    return {
        "name": "app-test",
        "platform": {"mtbf": mtbf, "checkpoint": 600.0},
        "workload": {"total_time": TOTAL_TIME, "alpha": 0.8},
        "protocols": ["PurePeriodicCkpt", "BiPeriodicCkpt", "ABFT&PeriodicCkpt"],
        "simulation": {"runs": 10, "seed": 7},
    }


@pytest.fixture(scope="module")
def surface() -> RegimeSurface:
    spec = RegimeMapSpec(
        node_counts=(NODES,),
        node_mtbf_values=tuple(mu * NODES for mu in PLATFORM_MTBFS),
        checkpoint_costs=(600.0,),
        abft_overheads=(1.03,),
        application_time=TOTAL_TIME,
    )
    return RegimeSurface(compute_regime_map(spec))


@pytest.fixture()
def service(surface, tmp_path):
    app = create_app(surface=surface, cache_dir=str(tmp_path / "jobs-cache"))
    with ServiceThread(app) as svc:
        yield svc


@pytest.fixture()
def bare_service():
    with ServiceThread(create_app()) as svc:
        yield svc


class TestOptimizeTiers:
    def test_grid_point_served_from_map(self, service):
        reply = service.request("POST", "/optimize", {"scenario": scenario()})
        assert reply.status == 200
        assert reply.tier == "map" and reply.cache == "miss"
        doc = reply.json()
        assert doc["tier"] == "map"
        assert doc["winner"] in scenario()["protocols"]
        assert doc["scenario"]["name"] == "app-test"
        assert len(doc["scenario"]["content_hash"]) == 64

    def test_cache_hit_is_byte_identical(self, service):
        miss = service.request("POST", "/optimize", {"scenario": scenario()})
        hit = service.request("POST", "/optimize", {"scenario": scenario()})
        assert miss.cache == "miss" and hit.cache == "hit"
        assert hit.tier == "answer-cache"
        assert hit.headers["x-repro-computed-tier"] == "map"
        assert hit.body == miss.body

    def test_field_order_and_defaults_share_one_cache_entry(self, service):
        doc = scenario()
        reordered = {"tier": "auto", "scenario": dict(reversed(list(doc.items())))}
        spelled = copy.deepcopy(doc)
        spelled["failures"] = {"model": "exponential"}  # the default, spelled out
        first = service.request("POST", "/optimize", {"scenario": doc})
        second = service.request("POST", "/optimize", reordered)
        third = service.request("POST", "/optimize", {"scenario": spelled})
        assert second.cache == "hit" and third.cache == "hit"
        assert first.body == second.body == third.body

    def test_out_of_hull_falls_back_to_analytical(self, service):
        low = scenario(PLATFORM_MTBFS[0] / 10)
        reply = service.request("POST", "/optimize", {"scenario": low})
        assert reply.status == 200 and reply.tier == "analytical"
        doc = reply.json()
        assert doc["tier"] == "analytical"
        assert "below the map hull" in doc["fallback"]

    def test_forced_analytical_skips_the_map(self, service):
        reply = service.request(
            "POST", "/optimize", {"scenario": scenario(), "tier": "analytical"}
        )
        assert reply.tier == "analytical"
        assert "fallback" not in reply.json()

    def test_forced_map_errors_when_unanswerable(self, service):
        low = scenario(PLATFORM_MTBFS[0] / 10)
        reply = service.request(
            "POST", "/optimize", {"scenario": low, "tier": "map"}
        )
        assert reply.status == 400
        assert "tier 'map' cannot answer" in reply.json()["error"]["detail"]

    def test_no_map_loaded_reports_fallback(self, bare_service):
        reply = bare_service.request("POST", "/optimize", {"scenario": scenario()})
        assert reply.tier == "analytical"
        assert reply.json()["fallback"] == "no regime map loaded"

    def test_map_and_analytical_agree_at_grid_point(self, service):
        mapped = service.request(
            "POST", "/optimize", {"scenario": scenario()}
        ).json()
        exact = service.request(
            "POST", "/optimize", {"scenario": scenario(), "tier": "analytical"}
        ).json()
        assert mapped["winner"] == exact["winner"]
        for name in scenario()["protocols"]:
            assert mapped["results"][name]["waste"] == pytest.approx(
                exact["results"][name]["waste"], rel=1e-9
            )


class TestValidation:
    def test_invalid_scenario_is_400_with_path(self, bare_service):
        reply = bare_service.request(
            "POST", "/optimize", {"scenario": {"bogus": True}}
        )
        assert reply.status == 400
        assert "invalid scenario" in reply.json()["error"]["detail"]

    def test_unknown_field_is_400(self, bare_service):
        reply = bare_service.request(
            "POST", "/optimize", {"scenario": scenario(), "surprise": 1}
        )
        assert reply.status == 400
        assert "surprise" in reply.json()["error"]["detail"]

    def test_unknown_protocol_is_400(self, bare_service):
        reply = bare_service.request(
            "POST", "/optimize", {"scenario": scenario(), "protocol": "Nope"}
        )
        assert reply.status == 400

    def test_protocol_and_protocols_conflict(self, bare_service):
        reply = bare_service.request(
            "POST",
            "/optimize",
            {"scenario": scenario(), "protocol": "NoFT", "protocols": ["NoFT"]},
        )
        assert reply.status == 400

    def test_bad_tier_value_is_400(self, bare_service):
        reply = bare_service.request(
            "POST", "/optimize", {"scenario": scenario(), "tier": "quantum"}
        )
        assert reply.status == 400

    def test_malformed_json_body_is_400(self, bare_service):
        reply = bare_service.request(
            "POST", "/optimize", raw_body=b"{not json"
        )
        assert reply.status == 400

    def test_unknown_endpoint_is_404(self, bare_service):
        assert bare_service.request("GET", "/nope").status == 404

    def test_wrong_method_is_405(self, bare_service):
        assert bare_service.request("GET", "/optimize").status == 405


class TestCompareAndCatalog:
    def test_compare_returns_ranking_points(self, bare_service):
        reply = bare_service.request("POST", "/compare", {"scenario": scenario()})
        assert reply.status == 200 and reply.tier == "analytical"
        doc = reply.json()
        assert doc["tier"] == "analytical"
        assert doc["protocols"] == scenario()["protocols"]
        assert len(doc["points"]) == 1
        point = doc["points"][0]
        assert point["winner"] in scenario()["protocols"]
        assert set(point["optima"]) == set(scenario()["protocols"])

    def test_compare_hits_cache_on_repeat(self, bare_service):
        first = bare_service.request("POST", "/compare", {"scenario": scenario()})
        second = bare_service.request("POST", "/compare", {"scenario": scenario()})
        assert second.cache == "hit" and second.body == first.body

    def test_protocols_catalog_matches_cli_serializer(self, bare_service):
        from repro.core.registry import registry_catalog

        reply = bare_service.request("GET", "/protocols")
        assert reply.status == 200 and reply.tier == "catalog"
        doc = reply.json()
        catalog = registry_catalog()
        assert doc["protocols"] == catalog["protocols"]
        assert doc["failure_models"] == catalog["failure_models"]
        assert doc["tier"] == "catalog"


class TestSimulateJobs:
    def test_job_lifecycle_and_result(self, service):
        reply = service.request(
            "POST",
            "/simulate",
            {
                "scenario": scenario(),
                "protocol": "PurePeriodicCkpt",
                "runs": 10,
                "periods": {"period": 50000.0},
            },
        )
        assert reply.status == 202 and reply.tier == "background"
        doc = reply.json()
        assert doc["tier"] == "background"
        snapshot = service.wait_for_job(doc["job"]["id"])
        assert snapshot["state"] == "done"
        result = snapshot["result"]
        assert result["protocol"] == "PurePeriodicCkpt"
        assert result["periods"] == {"period": 50000.0}
        assert 0.0 <= result["summary"]["waste_mean"] <= 1.0

    def test_identical_requests_share_a_job(self, service):
        body = {
            "scenario": scenario(),
            "protocol": "PurePeriodicCkpt",
            "runs": 10,
            "periods": {"period": 60000.0},
        }
        first = service.request("POST", "/simulate", body)
        second = service.request("POST", "/simulate", body)
        assert first.json()["job"]["id"] == second.json()["job"]["id"]
        assert second.cache == "hit"
        assert second.body == first.body

    def test_refine_job_without_periods(self, service):
        reply = service.request(
            "POST",
            "/simulate",
            {"scenario": scenario(), "protocol": "PurePeriodicCkpt", "runs": 10},
        )
        snapshot = service.wait_for_job(reply.json()["job"]["id"])
        assert snapshot["state"] == "done"
        result = snapshot["result"]
        assert result["analytical"]["protocol"] == "PurePeriodicCkpt"
        assert result["best"] is not None
        assert result["best"]["periods"]

    def test_multi_protocol_simulate_is_400(self, service):
        reply = service.request("POST", "/simulate", {"scenario": scenario()})
        assert reply.status == 400
        assert "one protocol" in reply.json()["error"]["detail"]

    def test_unknown_job_is_404(self, service):
        assert service.request("GET", "/jobs/job-999999-cafecafecafe").status == 404


class TestHealthz:
    def test_counters_track_tiers_and_endpoints(self, service):
        service.request("POST", "/optimize", {"scenario": scenario()})
        service.request("POST", "/optimize", {"scenario": scenario()})
        service.request(
            "POST", "/optimize", {"scenario": scenario(), "tier": "analytical"}
        )
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["tiers"]["map"] == 1
        assert health["tiers"]["answer-cache"] == 1
        assert health["tiers"]["analytical"] == 1
        assert health["endpoints"]["/optimize"] == 3
        assert health["answer_cache"]["hits"] == 1
        assert health["answer_cache"]["misses"] == 2
        assert health["regime_map"]["cells"] == len(PLATFORM_MTBFS)
        assert health["jobs"]["workers"] == 2

    def test_healthz_without_map(self, bare_service):
        health = bare_service.healthz()
        assert health["regime_map"] is None
        assert health["cache_dir"] is None
