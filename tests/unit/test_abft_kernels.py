"""Unit tests for the ABFT matmul, LU and Cholesky kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft import AbftCholesky, AbftLU, ProcessGrid, RecoveryError, abft_matmul
from repro.abft.cholesky import random_spd
from repro.abft.lu import lu_nopivot, random_diagonally_dominant
from repro.abft.overhead import measure_overhead


class TestAbftMatmul:
    def test_failure_free_product_is_exact(self, rng):
        a = rng.standard_normal((8, 6))
        b = rng.standard_normal((6, 10))
        result = abft_matmul(a, b, block_size=2, num_checksums=1)
        assert result.error < 1e-10
        assert result.column_residual < 1e-10
        assert result.row_residual < 1e-10
        assert result.recovered

    def test_process_failure_recovered(self, rng):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        result = abft_matmul(
            a,
            b,
            block_size=2,
            num_checksums=2,
            grid=ProcessGrid(2, 2),
            fail_process=(0, 1),
        )
        assert len(result.lost_blocks) == 4
        assert result.recovered
        assert result.error < 1e-10

    def test_explicit_lost_blocks(self, rng):
        a = rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 6))
        result = abft_matmul(
            a, b, block_size=2, num_checksums=1, lost_blocks=[(0, 0), (1, 2)]
        )
        assert result.recovered
        assert result.error < 1e-10

    def test_unrecoverable_pattern_raises(self, rng):
        a = rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 6))
        # Losing a whole 2x2 sub-grid of blocks exceeds one checksum in both
        # directions for the affected rows/columns.
        with pytest.raises(RecoveryError):
            abft_matmul(
                a,
                b,
                block_size=2,
                num_checksums=1,
                lost_blocks=[(0, 0), (0, 1), (1, 0), (1, 1)],
            )

    def test_fail_process_requires_grid(self, rng):
        a = rng.standard_normal((4, 4))
        with pytest.raises(ValueError):
            abft_matmul(a, a, block_size=2, fail_process=(0, 0))

    def test_shape_validation(self, rng):
        a = rng.standard_normal((4, 4))
        b = rng.standard_normal((6, 4))
        with pytest.raises(ValueError):
            abft_matmul(a, b, block_size=2)
        with pytest.raises(ValueError):
            abft_matmul(a, a, block_size=3)


class TestLuNopivot:
    def test_reconstructs_matrix(self, rng):
        a = random_diagonally_dominant(12, rng)
        lower, upper = lu_nopivot(a)
        assert np.allclose(lower @ upper, a)
        assert np.allclose(np.diag(lower), 1.0)
        assert np.allclose(np.triu(lower, 1), 0.0)
        assert np.allclose(np.tril(upper, -1), 0.0)

    def test_zero_pivot_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            lu_nopivot(np.array([[0.0, 1.0], [1.0, 0.0]]))

    def test_rejects_non_square(self, rng):
        with pytest.raises(ValueError):
            lu_nopivot(rng.standard_normal((3, 4)))


class TestAbftLU:
    def test_failure_free_factorization(self, rng):
        a = random_diagonally_dominant(16, rng)
        result = AbftLU(a, block_size=4).run()
        assert result.residual < 1e-10
        assert result.l_checksum_residual < 1e-8
        assert result.u_checksum_residual < 1e-8
        assert result.lost_blocks == ()

    def test_process_failure_mid_factorization(self, rng):
        a = random_diagonally_dominant(32, rng)
        factorization = AbftLU(a, block_size=4, grid=ProcessGrid(2, 2))
        result = factorization.run(fail_at_step=3, fail_process=(1, 0))
        assert len(result.lost_blocks) == 16
        assert result.fail_step == 3
        assert result.residual < 1e-8
        assert result.protected_recovery_succeeded
        assert result.reconstruction_time > 0.0

    @pytest.mark.parametrize("fail_step", [0, 1, 3])
    def test_failure_at_various_steps(self, rng, fail_step):
        a = random_diagonally_dominant(16, rng)
        result = AbftLU(a, block_size=4, grid=ProcessGrid(2, 2)).run(
            fail_at_step=fail_step, fail_process=(0, 0)
        )
        assert result.residual < 1e-8

    def test_explicit_lost_blocks(self, rng):
        a = random_diagonally_dominant(16, rng)
        result = AbftLU(a, block_size=4, num_checksums=1).run(
            fail_at_step=2, lost_blocks=[(2, 2), (3, 1)]
        )
        assert result.residual < 1e-8

    def test_derived_checksum_count(self, rng):
        a = random_diagonally_dominant(16, rng)
        factorization = AbftLU(a, block_size=4, grid=ProcessGrid(2, 2))
        assert factorization.num_checksums == 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            AbftLU(rng.standard_normal((4, 5)), block_size=2)
        with pytest.raises(ValueError):
            AbftLU(rng.standard_normal((4, 4)), block_size=3)
        with pytest.raises(ValueError):
            AbftLU(random_diagonally_dominant(8, rng), block_size=2, num_checksums=0)
        factorization = AbftLU(random_diagonally_dominant(8, rng), block_size=2)
        with pytest.raises(ValueError):
            factorization.run(fail_at_step=0, lost_blocks=[(7, 0)])


class TestAbftCholesky:
    def test_failure_free_factorization(self, rng):
        a = random_spd(16, rng)
        result = AbftCholesky(a, block_size=4).run()
        assert result.residual < 1e-10
        assert result.u_factor is None
        # L is lower triangular
        assert np.allclose(np.triu(result.l_factor, 1), 0.0)

    def test_process_failure_mid_factorization(self, rng):
        a = random_spd(32, rng)
        result = AbftCholesky(a, block_size=4, grid=ProcessGrid(2, 2)).run(
            fail_at_step=4, fail_process=(0, 1)
        )
        assert result.residual < 1e-8
        assert result.protected_recovery_succeeded

    def test_spd_generator(self, rng):
        a = random_spd(10, rng)
        assert np.allclose(a, a.T)
        assert np.all(np.linalg.eigvalsh(a) > 0)


class TestMeasureOverhead:
    def test_returns_sensible_values(self):
        measurement = measure_overhead("lu", n=32, block_size=8, trials=1)
        assert measurement.phi > 0
        assert measurement.unprotected_time > 0
        assert measurement.protected_time > 0
        assert measurement.reconstruction_time >= 0
        assert measurement.kernel == "lu"

    def test_cholesky_kernel(self):
        measurement = measure_overhead("cholesky", n=32, block_size=8, trials=1)
        assert measurement.kernel == "cholesky"
        assert measurement.phi > 0

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            measure_overhead("qr")

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            measure_overhead("lu", trials=0)
