"""Unit tests for the campaign subsystem (executor, cache, sweep runner)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign import (
    ParallelMonteCarloExecutor,
    ShardedVectorizedExecutor,
    SweepCache,
    SweepJob,
    SweepRunner,
    canonical_digest,
    resolve_worker_count,
)
from repro.core.parameters import ResilienceParameters
from repro.core.protocols import PurePeriodicCkptVectorized
from repro.simulation import MonteCarloRunner, run_monte_carlo
from repro.simulation.trace import ExecutionTrace, TimeBreakdown
from repro.utils import HOUR, MINUTE


def _fake_simulation(rng: np.random.Generator) -> ExecutionTrace:
    extra = float(rng.exponential(10.0))
    return ExecutionTrace(
        protocol="toy",
        application_time=100.0,
        makespan=100.0 + extra,
        failure_count=int(extra > 10.0),
        breakdown=TimeBreakdown(useful_work=100.0, lost_work=extra),
    )


def _parameters() -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=60.0,
        library_fraction=0.8,
    )


class TestExecutorValidation:
    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelMonteCarloExecutor(backend="fibers")

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelMonteCarloExecutor(workers=0)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelMonteCarloExecutor(chunk_size=-1)

    def test_invalid_runs(self):
        executor = ParallelMonteCarloExecutor(workers=2, backend="thread")
        with pytest.raises(ValueError, match="runs"):
            executor.run(_fake_simulation, runs=0)

    def test_serial_backend_matches_run_monte_carlo(self):
        serial = run_monte_carlo(_fake_simulation, runs=25, seed=3)
        executor = ParallelMonteCarloExecutor(workers=4, backend="serial")
        assert executor.run(_fake_simulation, runs=25, seed=3).waste == serial.waste

    def test_single_worker_short_circuits_to_serial(self):
        serial = run_monte_carlo(_fake_simulation, runs=10, seed=5)
        executor = ParallelMonteCarloExecutor(workers=1)
        assert executor.run(_fake_simulation, runs=10, seed=5).waste == serial.waste


def _vector_engine():
    from repro import ApplicationWorkload

    workload = ApplicationWorkload.single_epoch(2 * HOUR, 0.8, library_fraction=0.8)
    return PurePeriodicCkptVectorized(_parameters(), workload, period=1800.0)


class TestResolveWorkerCount:
    def test_explicit_count_passes_through(self):
        assert resolve_worker_count(3, 1000) == 3

    def test_capped_by_trial_count(self):
        assert resolve_worker_count(8, 5) == 5

    def test_auto_resolves_to_at_least_one(self):
        assert resolve_worker_count("auto", 10**6) >= 1
        assert resolve_worker_count(None, 10**6) >= 1

    def test_auto_capped_by_trial_count(self):
        assert resolve_worker_count("auto", 1) == 1

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_worker_count(0, 10)
        with pytest.raises(ValueError, match="workers"):
            resolve_worker_count(-2, 10)

    def test_rejects_non_positive_trials(self):
        with pytest.raises(ValueError, match="trials"):
            resolve_worker_count(2, 0)


class TestShardedVectorizedExecutor:
    def test_invalid_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ShardedVectorizedExecutor(backend="fibers")

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ShardedVectorizedExecutor(workers=0)

    def test_invalid_runs(self):
        executor = ShardedVectorizedExecutor(workers=2, backend="serial")
        with pytest.raises(ValueError, match="runs"):
            executor.run(_vector_engine(), runs=0)

    def test_shard_ranges_cover_contiguously(self):
        executor = ShardedVectorizedExecutor(workers=4, backend="serial")
        assert executor.shard_ranges(10) == [(0, 3), (3, 6), (6, 9), (9, 10)]
        # More workers than trials: one single-trial shard per trial.
        assert executor.shard_ranges(2) == [(0, 1), (1, 2)]

    def test_single_shard_short_circuits(self):
        engine = _vector_engine()
        serial = engine.run_trials(6, seed=9)
        executor = ShardedVectorizedExecutor(workers=1, backend="process")
        assert executor.run(engine, runs=6, seed=9) == serial

    def test_serial_backend_is_bit_identical(self):
        engine = _vector_engine()
        serial = engine.run_trials(11, seed=3)
        for workers in (2, 3, 5, 11, 50):
            executor = ShardedVectorizedExecutor(workers=workers, backend="serial")
            assert executor.run(engine, runs=11, seed=3) == serial, workers

    def test_unseeded_shards_are_still_deterministic_per_seedless_run(self):
        # seed=None derives fresh entropy per RandomStreams, so two unseeded
        # campaigns differ; but a sharded unseeded run must still produce a
        # well-formed table of the requested length.
        engine = _vector_engine()
        table = ShardedVectorizedExecutor(workers=3, backend="serial").run(
            engine, runs=7
        )
        assert len(table.data) == 7


class TestMonteCarloRunnerParallel:
    def test_parallel_runner_matches_serial_runner(self):
        serial = MonteCarloRunner(runs=30, seed=11).run(_fake_simulation)
        parallel = MonteCarloRunner(
            runs=30, seed=11, parallel=True, workers=3, backend="thread"
        ).run(_fake_simulation)
        assert parallel.waste == serial.waste
        assert parallel.makespan == serial.makespan
        assert parallel.failures == serial.failures

    def test_parallel_run_many_matches_serial(self):
        sims = [_fake_simulation, _fake_simulation, _fake_simulation]
        serial = MonteCarloRunner(runs=15, seed=4).run_many(sims)
        parallel = MonteCarloRunner(
            runs=15, seed=4, parallel=True, workers=2, backend="thread"
        ).run_many(sims)
        for a, b in zip(serial, parallel):
            assert a.waste == b.waste

    def test_parallel_flag_validates_backend_eagerly(self):
        with pytest.raises(ValueError, match="backend"):
            MonteCarloRunner(runs=5, parallel=True, backend="bogus")

    def test_parallel_property(self):
        assert MonteCarloRunner(runs=5, parallel=True, workers=2).parallel
        assert not MonteCarloRunner(runs=5).parallel


class TestSweepCache:
    def test_store_load_roundtrip(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        key = {"mtbf": 3600.0, "alpha": 0.5, "protocols": ["A", "B"]}
        value = {"model_waste": {"A": 0.25}}
        cache.store(key, value)
        assert cache.contains(key)
        assert cache.load(key) == value

    def test_missing_key_returns_none(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        assert cache.load({"mtbf": 1.0}) is None
        assert not cache.contains({"mtbf": 1.0})

    def test_corrupt_entry_is_ignored(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        key = {"mtbf": 1.0}
        path = cache.store(key, {"model_waste": {}})
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.load(key) is None

    def test_wrong_schema_is_ignored(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        key = {"mtbf": 1.0}
        path = cache.store(key, {"model_waste": {}})
        entry = json.loads(path.read_text())
        entry["schema"] = -1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load(key) is None

    def test_len_and_clear(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        for i in range(3):
            cache.store({"mtbf": float(i)}, {"model_waste": {}})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_digest_is_order_insensitive_and_value_sensitive(self):
        a = canonical_digest({"x": 1, "y": 2.5})
        b = canonical_digest({"y": 2.5, "x": 1})
        c = canonical_digest({"x": 1, "y": 2.5000001})
        assert a == b
        assert a != c


class TestSweepJob:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocols"):
            SweepJob(
                parameters=_parameters(),
                application_time=1 * HOUR,
                mtbf_values=(3600.0,),
                alpha_values=(0.5,),
                protocols=("CarbonCopyCkpt",),
            )

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SweepJob(
                parameters=_parameters(),
                application_time=1 * HOUR,
                mtbf_values=(),
                alpha_values=(0.5,),
            )

    def test_key_excludes_simulation_settings_when_not_simulating(self):
        job = SweepJob(
            parameters=_parameters(),
            application_time=1 * HOUR,
            mtbf_values=(3600.0,),
            alpha_values=(0.5,),
        )
        key = job.point_key(3600.0, 0.5)
        assert "simulation_runs" not in key
        assert "seed" not in key

    def test_key_differs_per_point(self):
        job = SweepJob(
            parameters=_parameters(),
            application_time=1 * HOUR,
            mtbf_values=(3600.0, 7200.0),
            alpha_values=(0.5,),
        )
        assert canonical_digest(job.point_key(3600.0, 0.5)) != canonical_digest(
            job.point_key(7200.0, 0.5)
        )


class TestSweepRunnerWithoutCache:
    def test_runs_without_cache_dir(self):
        job = SweepJob(
            parameters=_parameters(),
            application_time=1 * HOUR,
            mtbf_values=(3600.0, 7200.0),
            alpha_values=(0.2, 0.8),
        )
        result = SweepRunner().run(job)
        assert result.computed_points == 4
        assert result.cached_points == 0
        assert result.waste_grid("PurePeriodicCkpt")[(3600.0, 0.2)] > 0.0

    def test_simulated_waste_grid(self):
        job = SweepJob(
            parameters=_parameters(),
            application_time=1 * HOUR,
            mtbf_values=(7200.0,),
            alpha_values=(0.5,),
            protocols=("PurePeriodicCkpt",),
            simulate=True,
            simulation_runs=5,
            seed=1,
        )
        result = SweepRunner().run(job)
        grid = result.waste_grid("PurePeriodicCkpt", simulated=True)
        assert set(grid) == {(7200.0, 0.5)}
        assert 0.0 <= grid[(7200.0, 0.5)] <= 1.0


class TestSweepCacheConcurrency:
    def test_racing_writers_never_publish_partial_entries(self, tmp_path):
        # The advisor service's background jobs share one cache directory
        # with CLI sweeps, so writers racing on the same key must only ever
        # publish complete entries (write-temp-then-rename): a reader sees
        # one of the competing values in full, never a torn file.
        import threading

        cache = SweepCache(tmp_path / "c")
        key = {"mtbf": 3600.0, "alpha": 0.8}
        payloads = [
            {"model_waste": {"A": float(i)}, "padding": "x" * 4096}
            for i in range(8)
        ]
        barrier = threading.Barrier(len(payloads))
        problems: list = []

        def writer(payload: dict) -> None:
            try:
                barrier.wait(timeout=10)
                for _ in range(25):
                    cache.store(key, payload)
                    loaded = cache.load(key)
                    if loaded is None or loaded not in payloads:
                        problems.append(loaded)
            except Exception as exc:  # pragma: no cover - surfaced below
                problems.append(exc)

        threads = [
            threading.Thread(target=writer, args=(p,)) for p in payloads
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not problems
        assert cache.load(key) in payloads
        # One published entry, zero leaked staging files.
        assert len(cache) == 1
        leftovers = [
            p.name
            for p in (tmp_path / "c").iterdir()
            if p.suffix != ".json"
        ]
        assert leftovers == []

    def test_racing_writers_on_distinct_keys_all_publish(self, tmp_path):
        import threading

        cache = SweepCache(tmp_path / "c")
        barrier = threading.Barrier(6)
        problems: list = []

        def writer(index: int) -> None:
            try:
                barrier.wait(timeout=10)
                for round_number in range(20):
                    cache.store(
                        {"writer": index, "round": round_number},
                        {"model_waste": {"A": float(index)}},
                    )
            except Exception as exc:  # pragma: no cover - surfaced below
                problems.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not problems
        assert len(cache) == 6 * 20
        for index in range(6):
            assert cache.load({"writer": index, "round": 0}) == {
                "model_waste": {"A": float(index)}
            }
