"""Unit tests for the ``FailureModel.spawn()`` per-run isolation protocol.

``spawn()`` replaces the per-``simulate()`` ``copy.deepcopy`` the simulators
historically paid for stateful failure models: stateless models return
themselves (free), the trace replayer returns a rewound clone sharing the
immutable trace data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ApplicationWorkload, ResilienceParameters
from repro.core.protocols import PurePeriodicCkptSimulator
from repro.failures import (
    ExponentialFailureModel,
    LogNormalFailureModel,
    TraceFailureModel,
    WeibullFailureModel,
)
from repro.utils import HOUR, MINUTE


class TestSpawnContract:
    @pytest.mark.parametrize(
        "model",
        [
            ExponentialFailureModel(3600.0),
            WeibullFailureModel(3600.0, shape=0.7),
            LogNormalFailureModel(3600.0, sigma=1.0),
        ],
        ids=lambda m: type(m).__name__,
    )
    def test_stateless_models_spawn_themselves(self, model):
        assert model.spawn() is model

    def test_trace_model_spawns_rewound_clone(self):
        model = TraceFailureModel([10.0, 20.0, 30.0], cycle=False)
        rng = np.random.default_rng(0)
        model.sample_interarrival(rng)
        model.sample_interarrival(rng)
        clone = model.spawn()
        assert clone is not model
        assert clone.sample_interarrival(rng) == 10.0  # rewound to the start
        assert model.remaining == 1  # parent cursor untouched

    def test_trace_clone_shares_bulk_data(self):
        model = TraceFailureModel([1.0, 2.0, 3.0])
        clone = model.spawn()
        assert clone._interarrivals is model._interarrivals

    def test_trace_clone_preserves_cycle_flag(self):
        assert TraceFailureModel([1.0], cycle=False).spawn().cycle is False
        assert TraceFailureModel([1.0], cycle=True).spawn().cycle is True

    def test_clones_advance_independently(self):
        model = TraceFailureModel([5.0, 7.0, 11.0], cycle=False)
        rng = np.random.default_rng(0)
        a, b = model.spawn(), model.spawn()
        assert a.sample_interarrival(rng) == 5.0
        assert a.sample_interarrival(rng) == 7.0
        assert b.sample_interarrival(rng) == 5.0


class TestSimulatorUsesSpawn:
    def _simulator(self, model) -> PurePeriodicCkptSimulator:
        parameters = ResilienceParameters.from_scalars(
            platform_mtbf=2 * HOUR,
            checkpoint=10 * MINUTE,
            recovery=10 * MINUTE,
            downtime=60.0,
            library_fraction=0.8,
        )
        workload = ApplicationWorkload.single_epoch(
            6 * HOUR, 0.8, library_fraction=0.8
        )
        return PurePeriodicCkptSimulator(parameters, workload, failure_model=model)

    def test_trace_replay_runs_are_reproducible(self):
        model = TraceFailureModel.from_failure_times(
            [3600.0, 9000.0, 14000.0], cycle=True
        )
        simulator = self._simulator(model)
        first = simulator.simulate(seed=1)
        second = simulator.simulate(seed=1)
        assert first.makespan == second.makespan
        assert first.failure_count == second.failure_count

    def test_simulate_does_not_advance_shared_cursor(self):
        model = TraceFailureModel([1800.0, 3600.0, 7200.0], cycle=True)
        simulator = self._simulator(model)
        simulator.simulate(seed=2)
        assert model.remaining == 3  # untouched: the run consumed a spawn

    def test_legacy_reset_only_models_still_deep_copied(self):
        # A third-party stateful model predating spawn(): a plain object
        # exposing sample_interarrivals/reset but no spawn attribute.
        class Legacy:
            def __init__(self):
                self.cursor = 5
                self.mtbf = 3600.0

            def reset(self):
                self.cursor = 0

            def sample_interarrival(self, rng):
                self.cursor += 1
                return float(rng.exponential(self.mtbf))

            def sample_interarrivals(self, rng, count):
                self.cursor += count
                return rng.exponential(self.mtbf, size=count)

        legacy = Legacy()
        simulator = self._simulator(legacy)
        simulator.simulate(seed=3)
        # The simulator deep-copied and reset a private clone; the original
        # cursor is untouched.
        assert legacy.cursor == 5


class TestResetOnlySubclassIsolation:
    """A stateful FailureModel subclass that predates spawn() (defines only
    reset()) must keep the historical deep-copy isolation through the base
    spawn() -- two runs of one simulator stay independent and reproducible."""

    class ReplaySubclass(ExponentialFailureModel):
        def __init__(self, mtbf, values):
            super().__init__(mtbf)
            self.values = list(values)
            self.cursor = 0

        def reset(self):
            self.cursor = 0

        def sample_interarrival(self, rng):
            value = self.values[self.cursor % len(self.values)]
            self.cursor += 1
            return value

        def sample_interarrivals(self, rng, count):
            return np.array([self.sample_interarrival(rng) for _ in range(count)])

    def test_base_spawn_deep_copies_and_rewinds(self):
        model = self.ReplaySubclass(3600.0, [100.0, 200.0])
        model.cursor = 1
        clone = model.spawn()
        assert clone is not model
        assert clone.cursor == 0
        assert model.cursor == 1

    def test_repeated_runs_are_identical(self):
        from repro import ApplicationWorkload, ResilienceParameters
        from repro.utils import HOUR, MINUTE

        parameters = ResilienceParameters.from_scalars(
            platform_mtbf=2 * HOUR, checkpoint=10 * MINUTE, recovery=10 * MINUTE,
            downtime=60.0, library_fraction=0.8,
        )
        workload = ApplicationWorkload.single_epoch(6 * HOUR, 0.8, library_fraction=0.8)
        model = self.ReplaySubclass(2 * HOUR, [1800.0, 3600.0, 7200.0])
        simulator = PurePeriodicCkptSimulator(parameters, workload, failure_model=model)
        first = simulator.simulate(seed=1)
        second = simulator.simulate(seed=1)
        assert first.makespan == second.makespan
        assert model.cursor == 0  # shared instance untouched
