"""Unit tests for the structured stderr log helper."""

from __future__ import annotations

import io

import pytest

from repro.obs import logging as obs_logging
from repro.obs.metrics import global_registry, reset_global_registry


@pytest.fixture(autouse=True)
def clean_state():
    obs_logging.reset_log_notes()
    reset_global_registry()
    yield
    obs_logging.reset_log_notes()
    reset_global_registry()


class TestFormatFields:
    def test_plain_values_unquoted(self):
        line = obs_logging.format_fields(backend="auto", count=3, ratio=0.5)
        assert line == "backend=auto count=3 ratio=0.5"

    def test_strings_with_spaces_json_quoted(self):
        assert obs_logging.format_fields(detail="two words") == 'detail="two words"'

    def test_booleans_lowercase(self):
        assert obs_logging.format_fields(flag=True, other=False) == (
            "flag=true other=false"
        )


class TestLog:
    def test_emits_structured_line(self):
        stream = io.StringIO()
        wrote = obs_logging.log(
            "note", "backend-fallback", stream=stream, backend="auto", detail="x y"
        )
        assert wrote is True
        assert stream.getvalue() == (
            'note: event=backend-fallback backend=auto detail="x y"\n'
        )

    def test_dedupe_suppresses_second_emission(self):
        stream = io.StringIO()
        assert obs_logging.log("note", "e", dedupe="k", stream=stream)
        assert not obs_logging.log("note", "e", dedupe="k", stream=stream)
        assert stream.getvalue().count("event=e") == 1

    def test_reset_log_notes_allows_reemission(self):
        stream = io.StringIO()
        obs_logging.log("note", "e", dedupe="k", stream=stream)
        obs_logging.reset_log_notes()
        assert obs_logging.log("note", "e", dedupe="k", stream=stream)
        assert stream.getvalue().count("event=e") == 2

    def test_every_call_counts_even_when_suppressed(self):
        stream = io.StringIO()
        obs_logging.log("note", "evt", dedupe="k", stream=stream)
        obs_logging.log("note", "evt", dedupe="k", stream=stream)
        counter = global_registry().get("repro_log_events_total")
        assert counter.value(level="note", event="evt") == 2.0

    def test_default_stream_is_stderr(self, capsys):
        obs_logging.log("warn", "something", reason="because")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "warn: event=something reason=because\n"


class TestBackendFallbackRouting:
    """The vectorized engine's fallback notes flow through obs.log."""

    def test_note_format_and_dedupe(self, capsys):
        from repro.simulation.vectorized import (
            note_backend_fallback,
            reset_backend_fallback_notes,
        )

        reset_backend_fallback_notes()
        note_backend_fallback("sentinel detail")
        note_backend_fallback("sentinel detail")
        err = capsys.readouterr().err
        assert err.count("event=backend-fallback") == 1
        assert 'detail="sentinel detail"' in err
        counter = global_registry().get("repro_log_events_total")
        assert counter.value(level="note", event="backend-fallback") == 2.0
        reset_backend_fallback_notes()

    def test_none_detail_is_ignored(self, capsys):
        from repro.simulation.vectorized import note_backend_fallback

        note_backend_fallback(None)
        assert capsys.readouterr().err == ""
