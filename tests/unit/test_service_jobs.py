"""Unit tests for the background-job manager (lifecycle, dedupe, failure)."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.service.jobs import JOB_STATES, JobManager


def run(coro):
    return asyncio.run(coro)


class TestJobManager:
    def test_job_runs_to_done(self):
        async def scenario():
            manager = JobManager(workers=1)
            job = manager.submit("simulate", "d" * 64, {"q": 1}, lambda: {"x": 42})
            assert job.state in ("pending", "running")
            await manager.drain()
            return manager.get(job.id)

        job = run(scenario())
        assert job.state == "done"
        assert job.result == {"x": 42}
        assert job.error is None

    def test_failure_is_captured_not_raised(self):
        def boom():
            raise RuntimeError("engine exploded")

        async def scenario():
            manager = JobManager(workers=1)
            job = manager.submit("simulate", "e" * 64, {}, boom)
            await manager.drain()
            return job

        job = run(scenario())
        assert job.state == "failed"
        assert "RuntimeError" in job.error and "engine exploded" in job.error
        assert "error" in job.to_dict()

    def test_identical_digest_dedupes_to_one_job(self):
        calls = []

        async def scenario():
            manager = JobManager(workers=1)
            first = manager.submit("simulate", "f" * 64, {}, lambda: calls.append(1))
            second = manager.submit("simulate", "f" * 64, {}, lambda: calls.append(2))
            assert second is first
            await manager.drain()
            return manager

        manager = run(scenario())
        assert len(calls) == 1
        assert manager.counters()["submitted"] == 1

    def test_worker_cap_bounds_concurrency(self):
        active = []
        peak = []
        lock = threading.Lock()

        def tracked():
            with lock:
                active.append(1)
                peak.append(len(active))
            import time

            time.sleep(0.02)
            with lock:
                active.pop()
            return {}

        async def scenario():
            manager = JobManager(workers=2)
            for i in range(6):
                manager.submit("simulate", f"{i:064d}", {}, tracked)
            await manager.drain()
            return manager

        manager = run(scenario())
        assert max(peak) <= 2
        assert manager.counters()["done"] == 6

    def test_counters_cover_all_states(self):
        async def scenario():
            manager = JobManager(workers=1)
            manager.submit("simulate", "a" * 64, {}, dict)
            await manager.drain()
            return manager.counters()

        counters = run(scenario())
        for state in JOB_STATES:
            assert state in counters
        assert counters["done"] == 1
        assert counters["workers"] == 1

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            JobManager(0)

    def test_job_id_embeds_digest_prefix(self):
        async def scenario():
            manager = JobManager(workers=1)
            job = manager.submit("simulate", "abcdef" + "0" * 58, {}, dict)
            await manager.drain()
            return job

        job = run(scenario())
        assert job.id.endswith("abcdef000000")
        assert job.id.startswith("job-000001-")
