"""Unit tests for application workloads."""

from __future__ import annotations

import pytest

from repro.application import ApplicationWorkload, Epoch


class TestConstructors:
    def test_single_epoch(self):
        workload = ApplicationWorkload.single_epoch(100.0, 0.8)
        assert workload.epoch_count == 1
        assert workload.total_time == pytest.approx(100.0)
        assert workload.alpha == pytest.approx(0.8)

    def test_iterative(self):
        workload = ApplicationWorkload.iterative(10, 60.0, 0.5)
        assert workload.epoch_count == 10
        assert workload.total_time == pytest.approx(600.0)
        assert workload.total_library_time == pytest.approx(300.0)
        assert workload.is_uniform()

    def test_iterative_validation(self):
        with pytest.raises(ValueError):
            ApplicationWorkload.iterative(0, 60.0, 0.5)
        with pytest.raises(ValueError):
            ApplicationWorkload.iterative(3, -1.0, 0.5)

    def test_from_epochs(self):
        epochs = [Epoch.from_times(10.0, 30.0), Epoch.from_times(20.0, 40.0)]
        workload = ApplicationWorkload.from_epochs(epochs)
        assert workload.total_general_time == pytest.approx(30.0)
        assert workload.total_library_time == pytest.approx(70.0)
        assert not workload.is_uniform()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ApplicationWorkload.from_epochs([])


class TestAccessors:
    def test_alpha_aggregate(self):
        epochs = [Epoch.from_times(10.0, 10.0), Epoch.from_times(30.0, 50.0)]
        workload = ApplicationWorkload.from_epochs(epochs)
        assert workload.alpha == pytest.approx(60.0 / 100.0)

    def test_rho_comes_from_dataset(self):
        workload = ApplicationWorkload.single_epoch(10.0, 0.5, library_fraction=0.6)
        assert workload.rho == 0.6

    def test_iteration_and_len(self):
        workload = ApplicationWorkload.iterative(3, 10.0, 0.5)
        assert len(workload) == 3
        assert len(list(workload)) == 3

    def test_phase_sequence_skips_empty_phases(self):
        workload = ApplicationWorkload.single_epoch(10.0, 1.0)
        sequence = workload.phase_sequence()
        assert [kind for kind, _, _ in sequence] == ["library"]

    def test_phase_sequence_order(self):
        workload = ApplicationWorkload.iterative(2, 10.0, 0.5)
        kinds = [kind for kind, _, _ in workload.phase_sequence()]
        assert kinds == ["general", "library", "general", "library"]


class TestTransforms:
    def test_collapse_preserves_totals(self):
        workload = ApplicationWorkload.iterative(5, 10.0, 0.4)
        collapsed = workload.collapse()
        assert collapsed.epoch_count == 1
        assert collapsed.total_time == pytest.approx(workload.total_time)
        assert collapsed.alpha == pytest.approx(workload.alpha)

    def test_collapse_abft_capability(self):
        epochs = [
            Epoch.from_times(1.0, 2.0, abft_capable=True),
            Epoch.from_times(1.0, 2.0, abft_capable=False),
        ]
        collapsed = ApplicationWorkload.from_epochs(epochs).collapse()
        assert collapsed.epochs[0].abft_capable is False

    def test_scaled(self):
        workload = ApplicationWorkload.iterative(2, 10.0, 0.5, total_memory=100.0)
        scaled = workload.scaled(general_factor=1.0, library_factor=2.0, memory_factor=3.0)
        assert scaled.total_general_time == pytest.approx(10.0)
        assert scaled.total_library_time == pytest.approx(20.0)
        assert scaled.dataset.total_memory == pytest.approx(300.0)
