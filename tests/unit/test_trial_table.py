"""Unit tests for the columnar :class:`repro.simulation.table.TrialTable`."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.simulation import run_monte_carlo
from repro.simulation.table import TRIAL_DTYPE, TrialTable
from repro.simulation.trace import CATEGORIES, ExecutionTrace, TimeBreakdown
from repro.utils.stats import summarize


def _trace(makespan: float, *, failures: int = 0, truncated: bool = False) -> ExecutionTrace:
    return ExecutionTrace(
        protocol="toy",
        application_time=100.0,
        makespan=makespan,
        failure_count=failures,
        breakdown=TimeBreakdown(useful_work=100.0, lost_work=makespan - 100.0),
        metadata={"truncated": truncated},
    )


def _fake_simulation(rng: np.random.Generator) -> ExecutionTrace:
    extra = float(rng.exponential(10.0))
    return _trace(100.0 + extra, failures=int(extra > 10.0))


class TestConstruction:
    def test_empty_shape_and_dtype(self):
        table = TrialTable.empty(5, protocol="p", application_time=10.0)
        assert len(table) == 5
        assert table.runs == 5
        assert table.data.dtype == TRIAL_DTYPE
        assert table.protocol == "p"
        assert table.application_time == 10.0

    def test_negative_runs_rejected(self):
        with pytest.raises(ValueError):
            TrialTable.empty(-1)

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            TrialTable(np.zeros(3, dtype=float))

    def test_from_traces_round_trip(self):
        traces = [_trace(120.0, failures=1), _trace(150.0, failures=2, truncated=True)]
        table = TrialTable.from_traces(traces)
        assert table.protocol == "toy"
        assert table.application_time == 100.0
        assert list(table.makespans) == [120.0, 150.0]
        assert list(table.failure_counts) == [1, 2]
        assert list(table.truncated) == [False, True]
        assert table.wastes[0] == traces[0].waste
        assert table.column("lost_work")[1] == 50.0

    def test_concatenate_preserves_order(self):
        a = TrialTable.from_traces([_trace(110.0), _trace(120.0)])
        b = TrialTable.from_traces([_trace(130.0)])
        merged = TrialTable.concatenate([a, b])
        assert list(merged.makespans) == [110.0, 120.0, 130.0]
        assert merged.protocol == "toy"

    def test_concatenate_empty_list_rejected(self):
        with pytest.raises(ValueError):
            TrialTable.concatenate([])

    def test_slice_is_a_view(self):
        table = TrialTable.from_traces([_trace(110.0), _trace(120.0), _trace(130.0)])
        part = table.slice(1, 3)
        assert list(part.makespans) == [120.0, 130.0]
        assert part.data.base is not None

    def test_pickle_round_trip(self):
        table = TrialTable.from_traces([_trace(110.0), _trace(120.0)])
        clone = pickle.loads(pickle.dumps(table))
        assert clone == table

    def test_equality(self):
        a = TrialTable.from_traces([_trace(110.0)])
        b = TrialTable.from_traces([_trace(110.0)])
        c = TrialTable.from_traces([_trace(111.0)])
        assert a == b
        assert a != c
        assert a != "not a table"


class TestStatistics:
    def test_summarize_matches_scalar_summarize(self):
        table = TrialTable.from_traces(
            [_trace(110.0), _trace(130.0), _trace(170.0), _trace(250.0)]
        )
        vectorized = table.summarize("waste")
        scalar = summarize([t for t in table.wastes])
        assert vectorized == scalar

    def test_unknown_column_rejected(self):
        table = TrialTable.empty(1)
        with pytest.raises(KeyError):
            table.column("coffee")
        with pytest.raises(KeyError):
            table.summarize("coffee")

    def test_percentiles(self):
        traces = [_trace(100.0 + i) for i in range(101)]
        table = TrialTable.from_traces(traces)
        pct = table.percentiles("makespan", q=(0.0, 50.0, 100.0))
        assert pct[0.0] == 100.0
        assert pct[50.0] == 150.0
        assert pct[100.0] == 200.0

    def test_percentiles_empty_table(self):
        pct = TrialTable.empty(0).percentiles("waste", q=(50.0,))
        assert np.isnan(pct[50.0])

    def test_truncated_count(self):
        table = TrialTable.from_traces(
            [_trace(110.0), _trace(1e6, truncated=True), _trace(1e6, truncated=True)]
        )
        assert table.truncated_count == 2

    def test_breakdown_means_cover_all_categories(self):
        table = TrialTable.from_traces([_trace(120.0), _trace(140.0)])
        means = table.breakdown_means()
        assert set(means) == set(CATEGORIES)
        assert means["useful_work"] == 100.0
        assert means["lost_work"] == pytest.approx(30.0)
        assert table.mean_breakdown().useful_work == 100.0

    def test_summary_dict_is_json_compatible(self):
        import json

        table = TrialTable.from_traces([_trace(120.0), _trace(140.0)])
        payload = table.summary_dict()
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["runs"] == 2
        assert round_tripped["truncated"] == 0
        assert round_tripped["waste_mean"] == payload["waste_mean"]


class TestRunnerIntegration:
    def test_run_monte_carlo_exposes_table(self):
        result = run_monte_carlo(_fake_simulation, runs=25, seed=3)
        assert result.table is not None
        assert result.table.runs == 25
        assert result.waste == result.table.summarize("waste")
        assert result.truncated == 0

    def test_table_columns_match_traces(self):
        result = run_monte_carlo(_fake_simulation, runs=10, seed=7, keep_traces=True)
        assert [t.makespan for t in result.traces] == list(result.table.makespans)
        assert [t.waste for t in result.traces] == list(result.table.wastes)
        assert [t.failure_count for t in result.traces] == list(
            result.table.failure_counts
        )
