"""Unit tests for the vectorized across-trials engine and backend selection.

The engine's contract is exact: for a given root seed it must reproduce the
event backend trial for trial, bit for bit -- every assertion here uses
``==``, never approximate equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ApplicationWorkload, ResilienceParameters
from repro.campaign import SweepJob, SweepRunner
from repro.core.protocols import (
    AbftPeriodicCkptSimulator,
    AbftPeriodicCkptVectorized,
    BiPeriodicCkptSimulator,
    BiPeriodicCkptVectorized,
    NoFaultToleranceSimulator,
    NoFaultToleranceVectorized,
    PurePeriodicCkptSimulator,
    PurePeriodicCkptVectorized,
)
from repro.core.registry import (
    resolve_protocol,
    vectorized_law_names,
    vectorized_protocol_names,
)
from repro.failures import (
    ExponentialFailureModel,
    LogNormalFailureModel,
    TraceFailureModel,
    WeibullFailureModel,
)
from repro.simulation.rng import RandomStreams
from repro.simulation.trace import CATEGORIES
from repro.simulation.vectorized import (
    ENGINE_BACKENDS,
    VectorizedBackendError,
    VectorizedChunkedSimulator,
    exponential_mtbf_or_raise,
    reset_backend_fallback_notes,
    vectorized_backend_obstacle,
    vectorized_failure_model_or_raise,
)
from repro.utils import HOUR, MINUTE

PAIRS = {
    "NoFT": (NoFaultToleranceSimulator, NoFaultToleranceVectorized),
    "PurePeriodicCkpt": (PurePeriodicCkptSimulator, PurePeriodicCkptVectorized),
    "BiPeriodicCkpt": (BiPeriodicCkptSimulator, BiPeriodicCkptVectorized),
    "ABFT&PeriodicCkpt": (AbftPeriodicCkptSimulator, AbftPeriodicCkptVectorized),
}

LAW_MODELS = {
    "exponential": lambda mtbf: ExponentialFailureModel(mtbf),
    "weibull": lambda mtbf: WeibullFailureModel(mtbf, shape=0.7),
    "lognormal": lambda mtbf: LogNormalFailureModel(mtbf, sigma=1.0),
}


def _parameters(**overrides) -> ResilienceParameters:
    defaults = dict(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=60.0,
        library_fraction=0.8,
    )
    defaults.update(overrides)
    return ResilienceParameters.from_scalars(**defaults)


def _workload(total: float = 6 * HOUR) -> ApplicationWorkload:
    return ApplicationWorkload.single_epoch(total, 0.8, library_fraction=0.8)


def assert_tables_match_event(protocol, vectorized_cls, parameters, workload,
                              *, runs, seed, **kwargs):
    """Exact per-trial equality of the vectorized table vs the event walk."""
    table = vectorized_cls(parameters, workload, **kwargs).run_trials(runs, seed=seed)
    simulator = PAIRS[protocol][0](parameters, workload, **kwargs)
    streams = RandomStreams(seed)
    for trial in range(runs):
        trace = simulator.simulate(streams.generator_for_trial(trial))
        row = table.data[trial]
        assert float(row["makespan"]) == trace.makespan, trial
        assert float(row["waste"]) == trace.waste, trial
        assert int(row["failure_count"]) == trace.failure_count, trial
        assert bool(row["truncated"]) == trace.metadata["truncated"], trial
        for category in CATEGORIES:
            assert float(row[category]) == getattr(trace.breakdown, category), (
                trial,
                category,
            )


class TestCrossValidation:
    @pytest.mark.parametrize("protocol", sorted(PAIRS))
    def test_bit_identical_to_event(self, protocol):
        assert_tables_match_event(
            protocol, PAIRS[protocol][1], _parameters(), _workload(),
            runs=40, seed=2014,
        )

    @pytest.mark.parametrize("law", sorted(LAW_MODELS))
    @pytest.mark.parametrize("protocol", sorted(PAIRS))
    def test_bit_identical_under_every_vectorized_law(self, protocol, law):
        model = LAW_MODELS[law](90 * MINUTE)
        assert_tables_match_event(
            protocol, PAIRS[protocol][1], _parameters(), _workload(),
            runs=16, seed=11, failure_model=model,
        )

    @pytest.mark.parametrize("seed", [0, 1, 99, 20140527])
    def test_bit_identical_across_seeds(self, seed):
        assert_tables_match_event(
            "PurePeriodicCkpt", PurePeriodicCkptVectorized,
            _parameters(), _workload(), runs=12, seed=seed,
        )

    @pytest.mark.parametrize("protocol", sorted(PAIRS))
    def test_truncation_path_identical(self, protocol):
        # MTBF far below the checkpoint cost: runs essentially never finish
        # and hit the max_slowdown cap.
        params = _parameters(platform_mtbf=120.0)
        assert_tables_match_event(
            protocol, PAIRS[protocol][1], params,
            _workload(1 * HOUR), runs=15, seed=5, max_slowdown=3.0,
        )

    def test_degenerate_period_identical(self):
        # Explicit period below the checkpoint cost degenerates to a single
        # chunk in both engines.
        assert_tables_match_event(
            "PurePeriodicCkpt", PurePeriodicCkptVectorized, _parameters(),
            _workload(2 * HOUR), runs=15, seed=8, period=30.0,
        )

    def test_degenerate_periods_identical_bi_periodic(self):
        assert_tables_match_event(
            "BiPeriodicCkpt", BiPeriodicCkptVectorized, _parameters(),
            _workload(2 * HOUR), runs=15, seed=8,
            general_period=30.0, library_period=float("nan"),
        )

    def test_degenerate_period_identical_composite(self):
        assert_tables_match_event(
            "ABFT&PeriodicCkpt", AbftPeriodicCkptVectorized, _parameters(),
            _workload(2 * HOUR), runs=15, seed=8,
            general_period=float("nan"),
        )

    def test_composite_safeguard_identical(self):
        # Short library phases flip to fallback periodic checkpointing
        # under the Section III-B safeguard.
        workload = ApplicationWorkload.iterative(
            4, 2 * HOUR, 0.05, library_fraction=0.8
        )
        assert_tables_match_event(
            "ABFT&PeriodicCkpt", AbftPeriodicCkptVectorized, _parameters(),
            workload, runs=12, seed=13, safeguard=True,
        )

    @pytest.mark.parametrize("protocol", ["BiPeriodicCkpt", "ABFT&PeriodicCkpt"])
    def test_multi_epoch_identical(self, protocol):
        workload = ApplicationWorkload.iterative(
            5, 2 * HOUR, 0.6, library_fraction=0.8
        )
        assert_tables_match_event(
            protocol, PAIRS[protocol][1], _parameters(), workload,
            runs=12, seed=21,
        )

    def test_explicit_exponential_model_identical(self):
        model = ExponentialFailureModel(90 * MINUTE)
        assert_tables_match_event(
            "NoFT", NoFaultToleranceVectorized, _parameters(),
            _workload(2 * HOUR), runs=15, seed=4, failure_model=model,
        )

    def test_zero_downtime_restart(self):
        params = _parameters(downtime=0.0)
        assert_tables_match_event(
            "NoFT", NoFaultToleranceVectorized, params, _workload(2 * HOUR),
            runs=15, seed=6,
        )


class TestValidation:
    @pytest.mark.parametrize("protocol", sorted(PAIRS))
    def test_every_adapter_accepts_trace_replay(self, protocol):
        # Trace replay batches through per-trial cursors now: every adapter
        # takes it, and the result stays bit-identical to the event walk.
        assert_tables_match_event(
            protocol, PAIRS[protocol][1], _parameters(), _workload(),
            runs=8, seed=33,
            failure_model=TraceFailureModel(
                [900.0, 5200.0, 1700.0, 12000.0, 400.0]
            ),
        )

    def test_trace_subclass_rejected(self):
        # Subclasses may override the cursor semantics the batched sampler
        # replays, so only the exact class is eligible.
        class RecordedTrace(TraceFailureModel):
            pass

        with pytest.raises(VectorizedBackendError, match="RecordedTrace"):
            PurePeriodicCkptVectorized(
                _parameters(), _workload(),
                failure_model=RecordedTrace([100.0, 200.0, 300.0]),
            )

    def test_exponential_mtbf_helper(self):
        assert exponential_mtbf_or_raise(None, 123.0, protocol="p") == 123.0
        model = ExponentialFailureModel(456.0)
        assert exponential_mtbf_or_raise(model, 123.0, protocol="p") == 456.0

    def test_vectorized_model_helper_passes_flagged_laws_through(self):
        default = vectorized_failure_model_or_raise(None, 123.0, protocol="p")
        assert default == ExponentialFailureModel(123.0)
        for law, build in LAW_MODELS.items():
            model = build(456.0)
            assert (
                vectorized_failure_model_or_raise(model, 123.0, protocol="p")
                is model
            ), law

    def test_no_obstacle_for_trace_replay(self):
        detail = vectorized_backend_obstacle(
            PurePeriodicCkptVectorized,
            TraceFailureModel([100.0]),
            protocol="PurePeriodicCkpt",
            law="trace",
        )
        assert detail is None

    def test_obstacle_names_registry_laws(self):
        class RecordedTrace(TraceFailureModel):
            pass

        detail = vectorized_backend_obstacle(
            PurePeriodicCkptVectorized,
            RecordedTrace([100.0]),
            protocol="PurePeriodicCkpt",
            law="trace",
        )
        assert "RecordedTrace" in detail
        for law in vectorized_law_names():
            assert law in detail

    def test_obstacle_names_missing_engine(self):
        detail = vectorized_backend_obstacle(
            None, None, protocol="ThirdPartyCkpt", law="exponential",
            available=vectorized_protocol_names(),
        )
        assert "ThirdPartyCkpt" in detail
        assert "no vectorized engine" in detail

    def test_invalid_runs_rejected(self):
        engine = PurePeriodicCkptVectorized(_parameters(), _workload())
        with pytest.raises(ValueError, match="runs"):
            engine.run_trials(0)

    def test_invalid_max_slowdown_rejected(self):
        with pytest.raises(ValueError, match="max_slowdown"):
            NoFaultToleranceVectorized(
                _parameters(), _workload(), max_slowdown=0.5
            )

    def test_engine_rejects_unknown_restart_category(self):
        with pytest.raises(KeyError, match="coffee"):
            VectorizedChunkedSimulator(
                protocol="x", application_time=10.0, work=10.0,
                chunk_size=5.0, checkpoint_cost=0.0,
                restart_stages=(("coffee", 1.0),), mtbf=100.0,
                max_makespan=1e5,
            )


class TestRegistry:
    def test_all_four_protocols_registered(self):
        names = vectorized_protocol_names()
        for protocol in PAIRS:
            assert protocol in names

    def test_entry_exposes_vectorized_cls(self):
        assert resolve_protocol("pure-periodic").vectorized_cls is (
            PurePeriodicCkptVectorized
        )
        assert resolve_protocol("BiPeriodicCkpt").vectorized_cls is (
            BiPeriodicCkptVectorized
        )
        assert resolve_protocol("abft").vectorized_cls is (
            AbftPeriodicCkptVectorized
        )

    def test_vectorized_laws_registered(self):
        assert set(vectorized_law_names()) == {
            "exponential",
            "weibull",
            "lognormal",
            "trace",
        }

    def test_engine_backends_tuple(self):
        assert ENGINE_BACKENDS == ("event", "vectorized", "auto")


class TestSweepBackendSelection:
    def _job(self, **overrides) -> SweepJob:
        defaults = dict(
            parameters=_parameters(),
            application_time=6 * HOUR,
            mtbf_values=(90 * MINUTE, 120 * MINUTE),
            alpha_values=(0.5,),
            protocols=("PurePeriodicCkpt",),
            simulate=True,
            simulation_runs=8,
            seed=11,
        )
        defaults.update(overrides)
        return SweepJob(**defaults)

    def test_vectorized_backend_matches_event_backend(self):
        event = SweepRunner().run(self._job(backend="event"))
        vectorized = SweepRunner().run(self._job(backend="vectorized"))
        for a, b in zip(event.points, vectorized.points):
            assert a.simulated_waste == b.simulated_waste
            assert a.simulated == b.simulated

    def test_auto_backend_matches_event_backend(self):
        event = SweepRunner().run(self._job(backend="event"))
        auto = SweepRunner().run(
            self._job(backend="auto", protocols=("PurePeriodicCkpt", "NoFT"))
        )
        assert (
            auto.points[0].simulated_waste["PurePeriodicCkpt"]
            == event.points[0].simulated_waste["PurePeriodicCkpt"]
        )
        # NoFT runs vectorized under "auto" too; its summary must be present.
        assert "NoFT" in auto.points[0].simulated

    @pytest.mark.parametrize(
        "protocol", ["BiPeriodicCkpt", "ABFT&PeriodicCkpt"]
    )
    def test_vectorized_backend_runs_phased_protocols(self, protocol):
        event = SweepRunner().run(self._job(backend="event", protocols=(protocol,)))
        vectorized = SweepRunner().run(
            self._job(backend="vectorized", protocols=(protocol,))
        )
        for a, b in zip(event.points, vectorized.points):
            assert a.simulated_waste == b.simulated_waste
            assert a.simulated == b.simulated

    @pytest.mark.parametrize("law", ["weibull", "lognormal"])
    def test_vectorized_backend_runs_non_exponential_laws(self, law):
        params = (("shape", 0.7),) if law == "weibull" else (("sigma", 1.0),)
        event = SweepRunner().run(
            self._job(backend="event", failure_model=law, failure_params=params)
        )
        vectorized = SweepRunner().run(
            self._job(
                backend="vectorized", failure_model=law, failure_params=params
            )
        )
        for a, b in zip(event.points, vectorized.points):
            assert a.simulated_waste == b.simulated_waste
            assert a.simulated == b.simulated

    def test_vectorized_backend_accepts_trace_law(self):
        kwargs = dict(
            failure_model="trace",
            failure_params=(("interarrivals", (100.0, 200.0, 300.0)),),
            simulation_runs=4,
        )
        event = SweepRunner().run(self._job(backend="event", **kwargs))
        vectorized = SweepRunner().run(self._job(backend="vectorized", **kwargs))
        for a, b in zip(event.points, vectorized.points):
            assert a.simulated_waste == b.simulated_waste

    def test_auto_backend_vectorizes_trace_law(self, capsys):
        reset_backend_fallback_notes()
        job = self._job(
            backend="auto",
            failure_model="trace",
            failure_params=(("interarrivals", (100.0, 200.0, 300.0)),),
            simulation_runs=4,
        )
        result = SweepRunner().run(job)
        assert 0.0 <= result.points[0].simulated_waste["PurePeriodicCkpt"] <= 1.0
        assert "falling back" not in capsys.readouterr().err

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            self._job(backend="gpu")

    def test_backend_not_in_cache_key(self):
        event_job = self._job(backend="event")
        vectorized_job = self._job(backend="vectorized")
        assert event_job.point_key(90 * MINUTE, 0.5) == vectorized_job.point_key(
            90 * MINUTE, 0.5
        )

    def test_backends_share_cache_entries(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = SweepRunner(cache_dir=cache_dir).run(self._job(backend="vectorized"))
        resumed = SweepRunner(cache_dir=cache_dir).run(self._job(backend="event"))
        assert resumed.computed_points == 0
        assert resumed.points == first.points


class TestExponentialSubclassRejection:
    """A subclass of ExponentialFailureModel may override the sampling, so
    the vectorized engine must treat it as a foreign law (exact type check),
    not silently draw from a fresh pure-exponential model."""

    class TweakedExponential(ExponentialFailureModel):
        def sample_interarrival(self, rng):
            return 42.0

        def sample_interarrivals(self, rng, count):
            return np.full(count, 42.0)

    def test_helper_rejects_subclass(self):
        with pytest.raises(VectorizedBackendError, match="TweakedExponential"):
            exponential_mtbf_or_raise(
                self.TweakedExponential(3600.0), 3600.0, protocol="p"
            )

    def test_adapter_rejects_subclass(self):
        with pytest.raises(VectorizedBackendError):
            PurePeriodicCkptVectorized(
                _parameters(), _workload(),
                failure_model=self.TweakedExponential(3600.0),
            )


class TestSingleRunSummaryStaysJson:
    def test_summary_dict_replaces_nan_with_none(self):
        table = PurePeriodicCkptVectorized(_parameters(), _workload()).run_trials(
            1, seed=3
        )
        payload = table.summary_dict()
        assert payload["runs"] == 1
        assert payload["waste_std"] is None
        assert payload["waste_ci_half_width"] is None
        import json

        text = json.dumps(payload, allow_nan=False)  # strict JSON must succeed
        assert json.loads(text)["waste_mean"] == payload["waste_mean"]

    def test_single_run_sweep_cache_is_strict_json(self, tmp_path):
        import json

        from repro.campaign import SweepCache

        job = SweepJob(
            parameters=_parameters(),
            application_time=6 * HOUR,
            mtbf_values=(120 * MINUTE,),
            alpha_values=(0.5,),
            protocols=("PurePeriodicCkpt",),
            simulate=True,
            simulation_runs=1,
            seed=9,
        )
        cache_dir = tmp_path / "cache"
        SweepRunner(cache_dir=cache_dir).run(job)
        for path in SweepCache(cache_dir).entries():
            # parse_constant raises on the non-standard NaN/Infinity tokens.
            json.loads(
                path.read_text(),
                parse_constant=lambda token: (_ for _ in ()).throw(
                    ValueError(f"non-strict JSON token {token}")
                ),
            )
