"""Service observability: GET /metrics, healthz config, provenance under load.

The scrape contract: Prometheus text exposition 0.0.4, every cataloged
service- and global-scope family present even when idle, and counters
that exactly reconcile with the provenance headers the service handed
out -- checked here under concurrent mixed traffic.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.obs as obs
from repro.service import create_app
from repro.service.testing import ServiceThread


def scenario(mtbf: float = 86400.0, runs: int = 10) -> dict:
    return {
        "name": "obs-test",
        "platform": {"mtbf": mtbf, "checkpoint": 600.0},
        "workload": {"total_time": 360000.0, "alpha": 0.8},
        "protocols": ["PurePeriodicCkpt"],
        "simulation": {"runs": runs, "seed": 7},
    }


@pytest.fixture()
def service():
    with ServiceThread(create_app()) as svc:
        yield svc


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_text(self, service):
        reply = service.request("GET", "/metrics")
        assert reply.status == 200
        assert reply.headers["content-type"].startswith("text/plain")
        assert "version=0.0.4" in reply.headers["content-type"]
        text = reply.body.decode("utf-8")
        assert text.endswith("\n")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name, f"unparseable sample line: {line!r}"
            float(value)  # every sample value parses as a number

    def test_idle_scrape_shows_every_cataloged_family(self, service):
        text = service.request("GET", "/metrics").body.decode("utf-8")
        for name in obs.family_names():
            assert f"# TYPE {name} " in text, f"{name} missing from scrape"

    def test_requests_and_tiers_counted(self, service):
        service.request("POST", "/optimize", {"scenario": scenario()})
        service.request("POST", "/optimize", {"scenario": scenario()})
        text = service.request("GET", "/metrics").body.decode("utf-8")
        assert (
            'repro_service_requests_total{endpoint="/optimize"} 2' in text
        )
        assert 'repro_service_answers_total{tier="analytical"} 1' in text
        assert 'repro_service_answers_total{tier="answer-cache"} 1' in text
        assert (
            'repro_service_answer_cache_events_total{event="hit"} 1' in text
        )
        assert (
            'repro_service_answer_cache_events_total{event="miss"} 1' in text
        )

    def test_latency_histogram_per_endpoint_and_tier(self, service):
        service.request("POST", "/optimize", {"scenario": scenario()})
        service.request("POST", "/optimize", {"scenario": scenario()})
        text = service.request("GET", "/metrics").body.decode("utf-8")
        assert (
            'repro_service_request_seconds_count'
            '{endpoint="/optimize",tier="analytical"} 1'
        ) in text
        assert (
            'repro_service_request_seconds_count'
            '{endpoint="/optimize",tier="answer-cache"} 1'
        ) in text
        assert 'le="+Inf"' in text

    def test_uptime_gauge_sampled_at_scrape(self, service):
        text = service.request("GET", "/metrics").body.decode("utf-8")
        line = next(
            l for l in text.splitlines()
            if l.startswith("repro_service_uptime_seconds ")
        )
        assert float(line.split()[-1]) >= 0.0

    def test_two_services_do_not_bleed_counters(self, service):
        service.request("POST", "/optimize", {"scenario": scenario()})
        with ServiceThread(create_app()) as other:
            text = other.request("GET", "/metrics").body.decode("utf-8")
        # The fresh service has served nothing but its own scrape.
        assert 'endpoint="/optimize"' not in text
        assert 'repro_service_requests_total{endpoint="/metrics"} 1' in text


class TestHealthzAdditions:
    def test_uptime_and_config_reported(self, service):
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0.0
        config = health["config"]
        assert config["workers"] == 2
        assert config["answer_cache_entries"] == 4096
        assert config["mc_workers"]["requested"] == 1
        assert config["mc_workers"]["resolved"] == 1
        assert config["mc_workers"]["backend"] == "serial"

    def test_resolved_mc_workers_reflects_requested_count(self):
        with ServiceThread(create_app(mc_workers=3)) as svc:
            config = svc.healthz()["config"]
        assert config["mc_workers"]["requested"] == 3
        assert config["mc_workers"]["resolved"] == 3
        assert config["mc_workers"]["backend"] == "process"

    def test_auto_mc_workers_resolves_to_machine_width(self):
        with ServiceThread(create_app(mc_workers="auto")) as svc:
            config = svc.healthz()["config"]
        assert config["mc_workers"]["requested"] == "auto"
        assert config["mc_workers"]["resolved"] >= 1

    def test_legacy_payload_shape_is_preserved(self, service):
        service.request("POST", "/optimize", {"scenario": scenario()})
        service.request("POST", "/optimize", {"scenario": scenario()})
        health = service.healthz()
        assert health["tiers"] == {"analytical": 1, "answer-cache": 1}
        assert health["endpoints"]["/optimize"] == 2
        assert health["answer_cache"]["hits"] == 1
        assert health["answer_cache"]["misses"] == 1
        assert health["jobs"]["workers"] == 2
        assert health["cache_dir"] is None
        assert health["regime_map"] is None


class TestProvenanceUnderConcurrentLoad:
    """Satellite: every X-Repro-Tier header reconciles with the counters."""

    def test_tier_headers_match_tier_counters_exactly(self, service):
        # Mixed workload: one repeated /optimize body (first request a
        # miss, the rest answer-cache hits), distinct /optimize bodies
        # (all misses), /compare, and /protocols -- fired concurrently.
        requests = []
        for _ in range(10):
            requests.append(("POST", "/optimize", {"scenario": scenario()}))
        for index in range(10):
            requests.append(
                (
                    "POST",
                    "/optimize",
                    {"scenario": scenario(mtbf=86400.0 + index + 1)},
                )
            )
        for _ in range(5):
            requests.append(("POST", "/compare", {"scenario": scenario()}))
        for _ in range(5):
            requests.append(("GET", "/protocols", None))

        with ThreadPoolExecutor(max_workers=8) as pool:
            replies = list(
                pool.map(lambda r: service.request(r[0], r[1], r[2]), requests)
            )

        assert all(reply.status == 200 for reply in replies)
        served = TallyCounter(reply.tier for reply in replies)
        health = service.healthz()
        # The /healthz tier counters must equal the multiset of tiers the
        # service claimed in its own response headers -- no lost or
        # double-counted increments under concurrency.
        assert health["tiers"] == dict(served)
        assert health["endpoints"]["/optimize"] == 20
        assert health["endpoints"]["/compare"] == 5
        assert health["endpoints"]["/protocols"] == 5
        # Exactly one miss per distinct body; every repeat is a hit.
        assert health["answer_cache"]["misses"] == 13
        assert health["answer_cache"]["hits"] == 17
        assert served["answer-cache"] == 17

    def test_counters_survive_a_metrics_scrape_interleaved(self, service):
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(
                    service.request, "POST", "/optimize",
                    {"scenario": scenario()},
                )
                for _ in range(6)
            ] + [pool.submit(service.request, "GET", "/metrics")]
            replies = [f.result() for f in futures]
        assert all(r.status == 200 for r in replies)
        health = service.healthz()
        assert sum(health["tiers"].values()) == 6
