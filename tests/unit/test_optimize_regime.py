"""Unit tests for regime maps (repro.optimize.regime)."""

from __future__ import annotations

import json

import pytest

from repro.optimize import (
    DEFAULT_REGIME_PROTOCOLS,
    RegimeMap,
    RegimeMapSpec,
    compute_regime_map,
)
from repro.utils import DAY, MINUTE, YEAR


@pytest.fixture
def small_spec() -> RegimeMapSpec:
    return RegimeMapSpec(
        node_counts=(1_000, 100_000),
        node_mtbf_values=(5 * YEAR, 125 * YEAR),
        checkpoint_costs=(10 * MINUTE,),
        abft_overheads=(1.03,),
        application_time=1 * DAY,
    )


class TestRegimeMapSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            RegimeMapSpec(node_counts=(), node_mtbf_values=(5 * YEAR,))
        with pytest.raises(ValueError, match="positive"):
            RegimeMapSpec(node_counts=(0,), node_mtbf_values=(5 * YEAR,))
        with pytest.raises(ValueError, match="phi"):
            RegimeMapSpec(
                node_counts=(10,),
                node_mtbf_values=(5 * YEAR,),
                abft_overheads=(0.5,),
            )
        with pytest.raises(ValueError, match="backend"):
            RegimeMapSpec(
                node_counts=(10,), node_mtbf_values=(5 * YEAR,), backend="gpu"
            )

    def test_unknown_protocol_raises_with_suggestion(self):
        from repro.core.registry import UnknownProtocolError

        with pytest.raises(UnknownProtocolError, match="did you mean"):
            RegimeMapSpec(
                node_counts=(10,),
                node_mtbf_values=(5 * YEAR,),
                protocols=("PurePeriodikCkpt",),
            )

    def test_aliases_canonicalized(self):
        spec = RegimeMapSpec(
            node_counts=(10,),
            node_mtbf_values=(5 * YEAR,),
            protocols=("pure", "abft"),
        )
        assert spec.protocols == ("PurePeriodicCkpt", "ABFT&PeriodicCkpt")

    def test_platform_mtbf_scales_inversely_with_nodes(self, small_spec):
        parameters = small_spec.parameters_at(1_000, 5 * YEAR, 600.0, 1.03)
        assert parameters.platform_mtbf == pytest.approx(5 * YEAR / 1_000)

    def test_cell_count_and_order(self, small_spec):
        coords = list(small_spec.coordinates())
        assert len(coords) == small_spec.cell_count == 4
        # nodes-major ordering
        assert coords[0][0] == coords[1][0] == 1_000
        assert coords[2][0] == coords[3][0] == 100_000


class TestComputeRegimeMap:
    def test_crossover_narrative(self, small_spec):
        regime_map = compute_regime_map(small_spec)
        winners = regime_map.winners()
        # Small, reliable platform: protection is pure overhead, NoFT wins.
        assert winners[(1_000, 125 * YEAR, 10 * MINUTE, 1.03)] == "NoFT"
        # Large, failure-dominated platform: the composite strategy wins.
        assert (
            winners[(100_000, 5 * YEAR, 10 * MINUTE, 1.03)] == "ABFT&PeriodicCkpt"
        )
        counts = regime_map.winner_counts()
        assert sum(counts.values()) == len(regime_map.cells)
        assert set(counts) == set(DEFAULT_REGIME_PROTOCOLS)

    def test_numeric_optima_match_closed_forms(self, small_spec):
        # Equation 11 is the exact minimizer for the purely periodic
        # protocols.  (The composite is excluded on purpose: when a GENERAL
        # phase is shorter than the closed-form period, its model switches
        # to the short-phase branch, which can beat periodic checkpointing
        # outright -- the numeric optimizer then correctly lands in that
        # region instead of on Eq. 11.)
        regime_map = compute_regime_map(small_spec)
        checked = 0
        for cell in regime_map.cells:
            for name in ("PurePeriodicCkpt", "BiPeriodicCkpt"):
                entry = cell.results[name]
                for keyword, value in (entry["periods"] or {}).items():
                    reference = (entry["closed_form"] or {}).get(keyword)
                    if value is None or reference is None:
                        continue
                    assert abs(value - reference) / reference <= 1e-3
                    checked += 1
        assert checked > 0

    def test_deterministic_json(self, small_spec):
        first = compute_regime_map(small_spec)
        second = compute_regime_map(small_spec)
        assert first.to_json() == second.to_json()
        json.loads(first.to_json())  # strict JSON, no NaN/Infinity tokens

    def test_json_round_trip(self, small_spec, tmp_path):
        regime_map = compute_regime_map(small_spec)
        path = regime_map.save(tmp_path / "map.json")
        loaded = RegimeMap.load(path)
        assert loaded.to_json() == regime_map.to_json()
        assert loaded.winners() == regime_map.winners()

    def test_resume_reuses_cells_and_keeps_winners(self, small_spec, tmp_path):
        first = compute_regime_map(small_spec, cache_dir=tmp_path)
        assert first.computed_cells == 4 and first.cached_cells == 0
        second = compute_regime_map(small_spec, cache_dir=tmp_path)
        assert second.computed_cells == 0 and second.cached_cells == 4
        assert second.to_json() == first.to_json()

    def test_cache_key_separates_specs(self, small_spec, tmp_path):
        compute_regime_map(small_spec, cache_dir=tmp_path)
        different = small_spec.replace(alpha=0.5)
        result = compute_regime_map(different, cache_dir=tmp_path)
        assert result.computed_cells == 4  # nothing reused across specs

    def test_simulated_map_validates_ranking(self, tmp_path):
        spec = RegimeMapSpec(
            node_counts=(1_000, 100_000),
            node_mtbf_values=(5 * YEAR, 125 * YEAR),
            checkpoint_costs=(10 * MINUTE,),
            application_time=1 * DAY,
            protocols=("NoFT", "PurePeriodicCkpt"),
            simulate=True,
            simulation_runs=12,
            seed=2014,
            backend="auto",
        )
        first = compute_regime_map(spec, cache_dir=tmp_path, workers=2)
        second = compute_regime_map(spec, cache_dir=tmp_path, workers=2)
        assert second.computed_cells == 0
        assert second.to_json() == first.to_json()
        for cell in first.cells:
            for entry in cell.results.values():
                assert "simulated_waste" in entry

    def test_rendering(self, small_spec, tmp_path):
        regime_map = compute_regime_map(small_spec)
        ascii_text = regime_map.to_ascii()
        assert "winning protocol" in ascii_text
        assert "ABFT&PC" in ascii_text
        table = regime_map.to_table()
        assert "waste[NoFT]" in table.headers
        csv_path = regime_map.write_csv(tmp_path / "map.csv")
        assert csv_path.exists()
        assert "winner" in csv_path.read_text()

    def test_cell_at_unknown_coordinates(self, small_spec):
        regime_map = compute_regime_map(small_spec)
        with pytest.raises(KeyError):
            regime_map.cell_at(7, 1.0, 1.0, 1.0)


class TestCacheKeyOrder:
    def test_reordered_protocols_do_not_share_cells(self, tmp_path):
        # The protocol order is the winner tie-break, so a cache entry
        # written under one order must not be served for another.
        base = dict(
            node_counts=(1_000,),
            node_mtbf_values=(125 * YEAR,),
            checkpoint_costs=(10 * MINUTE,),
            application_time=1 * DAY,
        )
        first = compute_regime_map(
            RegimeMapSpec(protocols=("NoFT", "PurePeriodicCkpt"), **base),
            cache_dir=tmp_path,
        )
        second = compute_regime_map(
            RegimeMapSpec(protocols=("PurePeriodicCkpt", "NoFT"), **base),
            cache_dir=tmp_path,
        )
        assert first.computed_cells == 1
        assert second.computed_cells == 1  # not served from the other order
