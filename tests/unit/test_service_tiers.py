"""Tier-2 regime-surface tests: interpolation accuracy and fallback rules.

Pins the documented accuracy contract: on a dense map (adjacent MTBF lines
within a factor of 2), tier-2 interpolated waste agrees with the tier-3
analytical optimum within ``INTERPOLATION_WASTE_RTOL`` (periods within
``INTERPOLATION_PERIOD_RTOL``), and every question the map cannot answer
raises :class:`SurfaceMismatch` so the service falls back to tier 3.
"""

from __future__ import annotations

import math

import pytest

from repro.optimize.regime import RegimeMapSpec, compute_regime_map
from repro.scenario.spec import ScenarioSpec
from repro.service.tiers import (
    INTERPOLATION_PERIOD_RTOL,
    INTERPOLATION_WASTE_ATOL,
    INTERPOLATION_WASTE_RTOL,
    RegimeSurface,
    SurfaceMismatch,
    analytical_answer,
)

# Dense single-slice map: C = 600 s, phi = 1.03, one node count, platform
# MTBFs from 1 h to 64 h at ratio 2 (the densest grid the contract assumes).
NODES = 1000
PLATFORM_MTBFS = tuple(3600.0 * 2**k for k in range(7))
TOTAL_TIME = 360000.0
PROTOCOLS = ("PurePeriodicCkpt", "BiPeriodicCkpt", "ABFT&PeriodicCkpt")


@pytest.fixture(scope="module")
def surface() -> RegimeSurface:
    spec = RegimeMapSpec(
        node_counts=(NODES,),
        node_mtbf_values=tuple(mu * NODES for mu in PLATFORM_MTBFS),
        checkpoint_costs=(600.0,),
        abft_overheads=(1.03,),
        application_time=TOTAL_TIME,
    )
    return RegimeSurface(compute_regime_map(spec))


def scenario_at(mtbf: float, **platform_overrides) -> ScenarioSpec:
    platform = {"mtbf": mtbf, "checkpoint": 600.0}
    platform.update(platform_overrides)
    return ScenarioSpec.from_dict(
        {
            "name": "tiers-test",
            "platform": platform,
            "workload": {"total_time": TOTAL_TIME, "alpha": 0.8},
            "protocols": list(PROTOCOLS),
        }
    )


class TestInterpolationAccuracy:
    def test_exact_at_grid_points(self, surface):
        # On a grid line the bracket degenerates (t = 0) and tier 2 must
        # reproduce the precomputed cell, hence the analytical optimum.
        for mtbf in PLATFORM_MTBFS:
            answer = surface.interpolate(scenario_at(mtbf), PROTOCOLS)
            exact = analytical_answer(scenario_at(mtbf), PROTOCOLS)
            assert answer["winner"] == exact["winner"]
            for name in PROTOCOLS:
                assert answer["results"][name]["waste"] == pytest.approx(
                    exact["results"][name]["waste"], rel=1e-9, abs=1e-12
                )

    def test_waste_within_documented_tolerance_off_grid(self, surface):
        # Geometric midpoints between grid lines: the worst interpolation
        # points of a log-space scheme.
        for k in range(len(PLATFORM_MTBFS) - 1):
            mtbf = math.sqrt(PLATFORM_MTBFS[k] * PLATFORM_MTBFS[k + 1])
            answer = surface.interpolate(scenario_at(mtbf), PROTOCOLS)
            exact = analytical_answer(scenario_at(mtbf), PROTOCOLS)
            for name in PROTOCOLS:
                interpolated = answer["results"][name]["waste"]
                reference = exact["results"][name]["waste"]
                assert interpolated == pytest.approx(
                    reference,
                    rel=INTERPOLATION_WASTE_RTOL,
                    abs=INTERPOLATION_WASTE_ATOL,
                ), f"{name} at platform MTBF {mtbf:g}"

    def test_periods_within_documented_tolerance_off_grid(self, surface):
        for k in range(len(PLATFORM_MTBFS) - 1):
            mtbf = math.sqrt(PLATFORM_MTBFS[k] * PLATFORM_MTBFS[k + 1])
            answer = surface.interpolate(scenario_at(mtbf), PROTOCOLS)
            exact = analytical_answer(scenario_at(mtbf), PROTOCOLS)
            for name in PROTOCOLS:
                if not exact["results"][name]["feasible"]:
                    continue
                for keyword, reference in exact["results"][name]["periods"].items():
                    interpolated = answer["results"][name]["periods"][keyword]
                    assert interpolated == pytest.approx(
                        reference, rel=INTERPOLATION_PERIOD_RTOL
                    ), f"{name}.{keyword} at platform MTBF {mtbf:g}"

    def test_winner_agrees_away_from_crossovers(self, surface):
        # Where the margin is decisive (> the waste tolerance), tier 2 must
        # rank protocols exactly like tier 3.
        for k in range(len(PLATFORM_MTBFS) - 1):
            mtbf = math.sqrt(PLATFORM_MTBFS[k] * PLATFORM_MTBFS[k + 1])
            exact = analytical_answer(scenario_at(mtbf), PROTOCOLS)
            if exact["margin"] is None or exact["margin"] < INTERPOLATION_WASTE_RTOL:
                continue
            answer = surface.interpolate(scenario_at(mtbf), PROTOCOLS)
            assert answer["winner"] == exact["winner"]

    def test_interpolation_geometry_reported(self, surface):
        mtbf = math.sqrt(PLATFORM_MTBFS[0] * PLATFORM_MTBFS[1])
        answer = surface.interpolate(scenario_at(mtbf), PROTOCOLS)
        geometry = answer["interpolation"]
        assert geometry["mode"] == "platform-mtbf"
        assert geometry["platform_mtbf_bracket"] == [
            PLATFORM_MTBFS[0],
            PLATFORM_MTBFS[1],
        ]
        for entry in answer["results"].values():
            assert entry["interpolated"] is True


class TestBilinearQueries:
    def test_single_axis_map_answers_on_grid_nodes(self, surface):
        mtbf = PLATFORM_MTBFS[2]
        answer = surface.interpolate(
            scenario_at(mtbf), PROTOCOLS, nodes=NODES, node_mtbf=mtbf * NODES
        )
        assert answer["interpolation"]["mode"] == "bilinear"

    def test_half_specified_coordinates_mismatch(self, surface):
        with pytest.raises(SurfaceMismatch, match="both 'nodes' and 'node_mtbf'"):
            surface.interpolate(
                scenario_at(PLATFORM_MTBFS[0]), PROTOCOLS, nodes=NODES
            )

    def test_inconsistent_ratio_mismatch(self, surface):
        with pytest.raises(SurfaceMismatch, match="contradicts"):
            surface.interpolate(
                scenario_at(PLATFORM_MTBFS[0]),
                PROTOCOLS,
                nodes=NODES,
                node_mtbf=PLATFORM_MTBFS[3] * NODES,
            )


class TestHullAndCompatibility:
    def test_below_hull_falls_through(self, surface):
        with pytest.raises(SurfaceMismatch, match="below the map hull"):
            surface.interpolate(scenario_at(PLATFORM_MTBFS[0] / 4), PROTOCOLS)

    def test_above_hull_falls_through(self, surface):
        with pytest.raises(SurfaceMismatch, match="above the map hull"):
            surface.interpolate(scenario_at(PLATFORM_MTBFS[-1] * 4), PROTOCOLS)

    def test_off_grid_checkpoint_mismatch(self, surface):
        with pytest.raises(SurfaceMismatch, match="checkpoint"):
            surface.interpolate(
                scenario_at(PLATFORM_MTBFS[1], checkpoint=601.0), PROTOCOLS
            )

    def test_off_grid_phi_mismatch(self, surface):
        with pytest.raises(SurfaceMismatch, match="phi"):
            surface.interpolate(
                scenario_at(PLATFORM_MTBFS[1], abft_overhead=1.5), PROTOCOLS
            )

    def test_unknown_protocol_mismatch(self, surface):
        with pytest.raises(SurfaceMismatch, match="not on the map"):
            surface.interpolate(
                scenario_at(PLATFORM_MTBFS[1]), ("TripleCkpt",)
            )

    def test_different_workload_mismatch(self, surface):
        spec = ScenarioSpec.from_dict(
            {
                "platform": {"mtbf": PLATFORM_MTBFS[1], "checkpoint": 600.0},
                "workload": {"total_time": TOTAL_TIME * 2, "alpha": 0.8},
            }
        )
        with pytest.raises(SurfaceMismatch, match="total_time"):
            surface.interpolate(spec, PROTOCOLS)

    def test_non_exponential_failures_mismatch(self, surface):
        spec = ScenarioSpec.from_dict(
            {
                "platform": {"mtbf": PLATFORM_MTBFS[1], "checkpoint": 600.0},
                "workload": {"total_time": TOTAL_TIME, "alpha": 0.8},
                "failures": {"model": "weibull", "params": {"shape": 0.7}},
            }
        )
        with pytest.raises(SurfaceMismatch, match="exponential"):
            surface.interpolate(spec, PROTOCOLS)

    def test_multi_epoch_workload_mismatch(self, surface):
        spec = ScenarioSpec.from_dict(
            {
                "platform": {"mtbf": PLATFORM_MTBFS[1], "checkpoint": 600.0},
                "workload": {"total_time": TOTAL_TIME, "alpha": 0.8, "epochs": 4},
            }
        )
        with pytest.raises(SurfaceMismatch, match="epoch"):
            surface.interpolate(spec, PROTOCOLS)

    def test_model_params_mismatch(self, surface):
        spec = ScenarioSpec.from_dict(
            {
                "platform": {"mtbf": PLATFORM_MTBFS[1], "checkpoint": 600.0},
                "workload": {"total_time": TOTAL_TIME, "alpha": 0.8},
                "model_params": {"ABFT&PeriodicCkpt": {"per_epoch": False}},
            }
        )
        with pytest.raises(SurfaceMismatch, match="model_params"):
            surface.interpolate(spec, PROTOCOLS)


class TestAnalyticalAnswer:
    def test_winner_margin_and_shape(self):
        answer = analytical_answer(scenario_at(PLATFORM_MTBFS[2]), PROTOCOLS)
        assert answer["winner"] in PROTOCOLS
        assert answer["margin"] is not None and answer["margin"] >= 0
        for name in PROTOCOLS:
            entry = answer["results"][name]
            assert entry["interpolated"] is False
            assert 0.0 <= entry["waste"] <= 1.0
            assert "protocol" not in entry

    def test_single_protocol_has_no_margin(self):
        answer = analytical_answer(
            scenario_at(PLATFORM_MTBFS[2]), ("PurePeriodicCkpt",)
        )
        assert answer["margin"] is None
        assert answer["winner"] == "PurePeriodicCkpt"
