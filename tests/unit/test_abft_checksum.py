"""Unit tests for the block-checksum encodings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft import (
    BlockChecksumEncoding,
    encode_column_checksums,
    encode_row_checksums,
    generator_matrix,
    verify_column_checksums,
    verify_row_checksums,
)
from repro.abft.checksum import checksum_weight_matrix


class TestGeneratorMatrix:
    def test_shape(self):
        assert generator_matrix(5, 2).shape == (2, 5)

    def test_first_row_is_ones(self):
        assert np.allclose(generator_matrix(4, 3)[0], 1.0)

    def test_square_submatrices_invertible(self):
        generator = generator_matrix(6, 3)
        for cols in ((0, 1, 2), (1, 3, 5), (0, 2, 4)):
            sub = generator[:, cols]
            assert abs(np.linalg.det(sub)) > 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            generator_matrix(0, 1)
        with pytest.raises(ValueError):
            generator_matrix(3, 0)


class TestEncoding:
    def test_column_checksum_values(self, rng):
        matrix = rng.standard_normal((4, 6))
        generator = generator_matrix(3, 1)
        extended = encode_column_checksums(matrix, 2, generator)
        assert extended.shape == (4, 8)
        expected = matrix[:, 0:2] + matrix[:, 2:4] + matrix[:, 4:6]
        assert np.allclose(extended[:, 6:8], expected)

    def test_row_checksum_values(self, rng):
        matrix = rng.standard_normal((6, 4))
        generator = generator_matrix(3, 1)
        extended = encode_row_checksums(matrix, 2, generator)
        assert extended.shape == (8, 4)
        expected = matrix[0:2] + matrix[2:4] + matrix[4:6]
        assert np.allclose(extended[6:8], expected)

    def test_verify_accepts_valid_encoding(self, rng):
        matrix = rng.standard_normal((6, 6))
        generator = generator_matrix(3, 2)
        extended = encode_column_checksums(matrix, 2, generator)
        assert verify_column_checksums(extended, 2, generator) < 1e-12

    def test_verify_detects_corruption(self, rng):
        matrix = rng.standard_normal((6, 6))
        generator = generator_matrix(3, 2)
        extended = encode_column_checksums(matrix, 2, generator)
        extended[0, 0] += 1.0
        assert verify_column_checksums(extended, 2, generator) > 1e-6

    def test_row_verify(self, rng):
        matrix = rng.standard_normal((6, 6))
        generator = generator_matrix(3, 1)
        extended = encode_row_checksums(matrix, 2, generator)
        assert verify_row_checksums(extended, 2, generator) < 1e-12

    def test_weight_matrix_shape(self):
        weights = checksum_weight_matrix(generator_matrix(4, 2), 3)
        assert weights.shape == (12, 6)

    def test_dimension_mismatch_rejected(self, rng):
        matrix = rng.standard_normal((4, 6))
        with pytest.raises(ValueError):
            encode_column_checksums(matrix, 4, generator_matrix(2, 1))
        with pytest.raises(ValueError):
            encode_column_checksums(matrix, 2, generator_matrix(5, 1))


class TestBlockChecksumEncoding:
    def test_encode_and_residuals(self, rng):
        encoding = BlockChecksumEncoding(
            block_size=2, num_block_rows=3, num_block_cols=3, num_checksums=2
        )
        matrix = rng.standard_normal((6, 6))
        columns = encoding.encode_columns(matrix)
        rows = encoding.encode_rows(matrix)
        assert columns.shape == (6, 10)
        assert rows.shape == (10, 6)
        assert encoding.column_residual(columns) < 1e-12
        assert encoding.row_residual(rows) < 1e-12

    def test_full_encoding_shape(self, rng):
        encoding = BlockChecksumEncoding(
            block_size=2, num_block_rows=3, num_block_cols=3, num_checksums=1
        )
        full = encoding.encode_full(rng.standard_normal((6, 6)))
        assert full.shape == (8, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockChecksumEncoding(0, 1, 1, 1)
