"""Test coverage for the ``max_slowdown`` truncation path.

In infeasible regimes (e.g. the checkpoint cost exceeds the MTBF) a
simulated execution essentially never finishes; the ``max_slowdown`` cap
turns it into a truncated trace whose waste is ~1.  These tests pin the
whole reporting chain: the trace metadata flag, the ``TrialTable`` column,
the campaign summaries (serial, parallel and vectorized) and the sweep
point summaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ApplicationWorkload, ResilienceParameters
from repro.campaign import ParallelMonteCarloExecutor, SweepJob, SweepRunner
from repro.core.protocols import (
    NoFaultToleranceSimulator,
    PurePeriodicCkptSimulator,
)
from repro.core.protocols.pure_periodic import PurePeriodicCkptVectorized
from repro.simulation import run_monte_carlo
from repro.utils import HOUR, MINUTE

#: Parameters in a hopeless regime: the 200-minute checkpoint dwarfs the
#: 2-minute MTBF, so no chunk (work + checkpoint) ever completes -- the
#: probability of a failure-free segment is ~e^-100.
MAX_SLOWDOWN = 3.0
SEED = 31
RUNS = 12


def _infeasible_parameters() -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=2 * MINUTE,
        checkpoint=200 * MINUTE,
        recovery=10 * MINUTE,
        downtime=60.0,
        library_fraction=0.8,
    )


def _workload() -> ApplicationWorkload:
    return ApplicationWorkload.single_epoch(1 * HOUR, 0.8, library_fraction=0.8)


@pytest.fixture()
def simulator() -> PurePeriodicCkptSimulator:
    return PurePeriodicCkptSimulator(
        _infeasible_parameters(), _workload(), max_slowdown=MAX_SLOWDOWN
    )


class TestTraceTruncation:
    def test_trace_flagged_truncated(self, simulator):
        trace = simulator.simulate(seed=SEED)
        assert trace.metadata["truncated"] is True

    def test_waste_clamped_near_one(self, simulator):
        trace = simulator.simulate(seed=SEED)
        # Truncated at makespan > max_slowdown * T0, so the waste is at
        # least 1 - 1/max_slowdown and approaches 1 with the cap.
        assert trace.waste >= 1.0 - 1.0 / MAX_SLOWDOWN
        assert trace.waste < 1.0

    def test_makespan_just_past_cap(self, simulator):
        trace = simulator.simulate(seed=SEED)
        assert trace.makespan > MAX_SLOWDOWN * _workload().total_time

    def test_feasible_run_not_flagged(self):
        feasible = NoFaultToleranceSimulator(
            ResilienceParameters.from_scalars(
                platform_mtbf=1000 * HOUR,
                checkpoint=10 * MINUTE,
                recovery=10 * MINUTE,
                downtime=60.0,
                library_fraction=0.8,
            ),
            _workload(),
        )
        trace = feasible.simulate(seed=SEED)
        assert trace.metadata["truncated"] is False


class TestCampaignTruncation:
    def test_trial_table_flags_every_truncated_trial(self, simulator):
        result = run_monte_carlo(simulator.simulate_once, runs=RUNS, seed=SEED)
        assert result.table.truncated_count == RUNS
        assert bool(np.all(result.table.truncated))
        assert result.truncated == RUNS

    def test_parallel_campaign_reports_same_truncated_count(self, simulator):
        serial = run_monte_carlo(simulator.simulate_once, runs=RUNS, seed=SEED)
        parallel = ParallelMonteCarloExecutor(workers=3, backend="thread").run(
            simulator.simulate_once, runs=RUNS, seed=SEED
        )
        assert parallel.truncated == serial.truncated == RUNS
        assert parallel.waste == serial.waste

    def test_vectorized_backend_flags_identically(self, simulator):
        table = PurePeriodicCkptVectorized(
            _infeasible_parameters(), _workload(), max_slowdown=MAX_SLOWDOWN
        ).run_trials(RUNS, seed=SEED)
        event = run_monte_carlo(simulator.simulate_once, runs=RUNS, seed=SEED)
        assert table.truncated_count == event.table.truncated_count
        assert bool(np.all(table.makespans == event.table.makespans))

    def test_mean_waste_clamped_near_one(self, simulator):
        result = run_monte_carlo(simulator.simulate_once, runs=RUNS, seed=SEED)
        assert result.mean_waste >= 1.0 - 1.0 / MAX_SLOWDOWN


class TestSweepTruncation:
    def _job(self, backend: str) -> SweepJob:
        # The low truncation cap keeps the hopeless walk affordable (each
        # trial grinds through ~90 failures before hitting it, not ~300k).
        return SweepJob(
            parameters=_infeasible_parameters(),
            application_time=1 * HOUR,
            mtbf_values=(2 * MINUTE,),
            alpha_values=(0.8,),
            protocols=("PurePeriodicCkpt",),
            simulate=True,
            simulation_runs=RUNS,
            seed=SEED,
            backend=backend,
            max_slowdown=MAX_SLOWDOWN,
        )

    @pytest.mark.parametrize("backend", ["event", "vectorized"])
    def test_point_summary_reports_truncated_trials(self, backend):
        result = SweepRunner().run(self._job(backend))
        point = result.points[0]
        summary = point.simulated["PurePeriodicCkpt"]
        assert summary["truncated"] == RUNS
        assert point.truncated_trials("PurePeriodicCkpt") == RUNS
        assert summary["waste_mean"] >= 1.0 - 1.0 / MAX_SLOWDOWN

    def test_truncated_count_survives_the_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        SweepRunner(cache_dir=cache_dir).run(self._job("event"))
        resumed = SweepRunner(cache_dir=cache_dir).run(self._job("event"))
        assert resumed.computed_points == 0
        assert resumed.points[0].truncated_trials("PurePeriodicCkpt") == RUNS
