"""Unit tests for the failure distribution models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.failures import (
    ExponentialFailureModel,
    LogNormalFailureModel,
    TraceFailureModel,
    WeibullFailureModel,
)


class TestExponentialFailureModel:
    def test_mtbf_property(self):
        assert ExponentialFailureModel(3600.0).mtbf == 3600.0

    def test_rate(self):
        assert ExponentialFailureModel(100.0).rate == pytest.approx(0.01)

    def test_rejects_non_positive_mtbf(self):
        with pytest.raises(ValueError):
            ExponentialFailureModel(0.0)

    def test_samples_are_positive(self, rng):
        model = ExponentialFailureModel(10.0)
        samples = model.sample_interarrivals(rng, 1000)
        assert np.all(samples > 0)

    def test_empirical_mean_close_to_mtbf(self, rng):
        model = ExponentialFailureModel(50.0)
        samples = model.sample_interarrivals(rng, 20000)
        assert np.mean(samples) == pytest.approx(50.0, rel=0.05)

    def test_failure_times_sorted_and_bounded(self, rng):
        model = ExponentialFailureModel(5.0)
        times = model.failure_times(rng, horizon=200.0)
        assert np.all(np.diff(times) > 0)
        assert times.size == 0 or times[-1] < 200.0

    def test_failure_times_count_close_to_expectation(self, rng):
        model = ExponentialFailureModel(2.0)
        times = model.failure_times(rng, horizon=10000.0)
        assert times.size == pytest.approx(5000, rel=0.1)

    def test_zero_horizon(self, rng):
        assert ExponentialFailureModel(2.0).failure_times(rng, 0.0).size == 0

    def test_scaled(self):
        model = ExponentialFailureModel(100.0).scaled(0.5)
        assert model.mtbf == 50.0

    def test_equality_and_hash(self):
        assert ExponentialFailureModel(10.0) == ExponentialFailureModel(10.0)
        assert hash(ExponentialFailureModel(10.0)) == hash(ExponentialFailureModel(10.0))
        assert ExponentialFailureModel(10.0) != ExponentialFailureModel(20.0)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            ExponentialFailureModel(1.0).sample_interarrivals(rng, -1)


class TestWeibullFailureModel:
    def test_mean_matches_requested_mtbf(self, rng):
        model = WeibullFailureModel(mtbf=100.0, shape=0.7)
        samples = model.sample_interarrivals(rng, 50000)
        assert np.mean(samples) == pytest.approx(100.0, rel=0.05)

    def test_shape_one_is_exponential_like(self, rng):
        model = WeibullFailureModel(mtbf=10.0, shape=1.0)
        assert model.scale == pytest.approx(10.0)

    def test_scaled_preserves_shape(self):
        model = WeibullFailureModel(100.0, shape=0.5).scaled(2.0)
        assert model.mtbf == 200.0
        assert model.shape == 0.5

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            WeibullFailureModel(100.0, shape=0.0)


class TestLogNormalFailureModel:
    def test_mean_matches_requested_mtbf(self, rng):
        model = LogNormalFailureModel(mtbf=100.0, sigma=1.0)
        samples = model.sample_interarrivals(rng, 100000)
        assert np.mean(samples) == pytest.approx(100.0, rel=0.1)

    def test_scaled(self):
        model = LogNormalFailureModel(100.0, sigma=0.5).scaled(3.0)
        assert model.mtbf == 300.0
        assert model.sigma == 0.5


class TestTraceFailureModel:
    def test_replays_in_order(self, rng):
        model = TraceFailureModel([1.0, 2.0, 3.0], cycle=False)
        assert [model.sample_interarrival(rng) for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_exhaustion_returns_guard(self, rng):
        model = TraceFailureModel([1.0], cycle=False)
        model.sample_interarrival(rng)
        assert model.sample_interarrival(rng) == TraceFailureModel.EXHAUSTED

    def test_cycling(self, rng):
        model = TraceFailureModel([1.0, 2.0], cycle=True)
        values = [model.sample_interarrival(rng) for _ in range(4)]
        assert values == [1.0, 2.0, 1.0, 2.0]

    def test_reset(self, rng):
        model = TraceFailureModel([5.0, 6.0])
        model.sample_interarrival(rng)
        model.reset()
        assert model.sample_interarrival(rng) == 5.0

    def test_from_failure_times(self, rng):
        model = TraceFailureModel.from_failure_times([2.0, 5.0, 9.0])
        assert [model.sample_interarrival(rng) for _ in range(3)] == [2.0, 3.0, 4.0]

    def test_mtbf_is_trace_mean(self):
        assert TraceFailureModel([1.0, 3.0]).mtbf == 2.0

    def test_rejects_empty_and_non_positive(self):
        with pytest.raises(ValueError):
            TraceFailureModel([])
        with pytest.raises(ValueError):
            TraceFailureModel([1.0, 0.0])

    def test_from_failure_times_requires_increasing(self):
        with pytest.raises(ValueError):
            TraceFailureModel.from_failure_times([3.0, 2.0])

    def test_scaled(self, rng):
        model = TraceFailureModel([2.0, 4.0]).scaled(0.5)
        assert model.sample_interarrival(rng) == 1.0


class TestTraceBlockSampler:
    """Batched trace replay must match the per-draw event semantics."""

    def _rngs(self, n):
        return [np.random.default_rng(i) for i in range(n)]

    def test_each_trial_replays_from_the_start(self, rng):
        model = TraceFailureModel([1.0, 2.0, 3.0])
        sampler = model.trial_block_sampler(3)
        blocks = sampler.sample_blocks(np.arange(3), self._rngs(3), 2)
        assert blocks.tolist() == [[1.0, 2.0]] * 3

    def test_cycling_wraps_like_sample_interarrival(self, rng):
        model = TraceFailureModel([1.0, 2.0], cycle=True)
        sampler = model.trial_block_sampler(1)
        blocks = sampler.sample_blocks(np.array([0]), self._rngs(1), 5)
        expected = [model.sample_interarrival(rng) for _ in range(5)]
        assert blocks[0].tolist() == expected == [1.0, 2.0, 1.0, 2.0, 1.0]

    def test_exhaustion_returns_guard_without_advancing(self, rng):
        model = TraceFailureModel([1.0, 2.0], cycle=False)
        sampler = model.trial_block_sampler(1)
        first = sampler.sample_blocks(np.array([0]), self._rngs(1), 4)
        guard = TraceFailureModel.EXHAUSTED
        assert first[0].tolist() == [1.0, 2.0, guard, guard]
        # Exhausted draws never advance the cursor: further blocks keep
        # returning the guard, exactly like repeated sample_interarrival.
        again = sampler.sample_blocks(np.array([0]), self._rngs(1), 2)
        assert again[0].tolist() == [guard, guard]

    def test_cursors_are_independent_per_trial(self, rng):
        model = TraceFailureModel([1.0, 2.0, 3.0], cycle=True)
        sampler = model.trial_block_sampler(2)
        sampler.sample_blocks(np.array([0]), self._rngs(1), 2)  # advance trial 0
        blocks = sampler.sample_blocks(np.array([0, 1]), self._rngs(2), 2)
        assert blocks[0].tolist() == [3.0, 1.0]  # resumed where it left off
        assert blocks[1].tolist() == [1.0, 2.0]  # untouched trial starts fresh

    def test_generators_are_never_consumed(self):
        model = TraceFailureModel([4.0, 5.0])
        sampler = model.trial_block_sampler(2)
        rngs = self._rngs(2)
        states = [rng.bit_generator.state for rng in rngs]
        sampler.sample_blocks(np.arange(2), rngs, 3)
        assert [rng.bit_generator.state for rng in rngs] == states

    def test_rejects_non_positive_trials(self):
        with pytest.raises(ValueError, match="trials"):
            TraceFailureModel([1.0]).trial_block_sampler(0)
