"""Unit tests for the optimal-period formulas and periodic building blocks."""

from __future__ import annotations

import math

import pytest

from repro.core.analytical import (
    daly_period,
    first_order_waste,
    optimal_period,
    paper_optimal_period,
    periodic_final_time,
    unprotected_final_time,
    young_period,
)
from repro.utils import MINUTE


class TestPeriodFormulas:
    def test_young(self):
        assert young_period(600.0, 7200.0) == pytest.approx(math.sqrt(2 * 600 * 7200))

    def test_daly_adds_checkpoint(self):
        assert daly_period(600.0, 7200.0) == pytest.approx(
            young_period(600.0, 7200.0) + 600.0
        )

    def test_paper_equation_11(self):
        # P_opt = sqrt(2 C (mu - D - R))
        assert paper_optimal_period(600.0, 7200.0, 60.0, 600.0) == pytest.approx(
            math.sqrt(2 * 600 * (7200 - 660))
        )

    def test_paper_formula_infeasible_returns_nan(self):
        assert math.isnan(paper_optimal_period(600.0, 500.0, 60.0, 600.0))

    def test_dispatch(self):
        assert optimal_period(600.0, 7200.0, formula="young") == young_period(600.0, 7200.0)
        assert optimal_period(600.0, 7200.0, formula="daly") == daly_period(600.0, 7200.0)
        assert optimal_period(600.0, 7200.0, 60.0, 600.0) == paper_optimal_period(
            600.0, 7200.0, 60.0, 600.0
        )
        with pytest.raises(ValueError):
            optimal_period(600.0, 7200.0, formula="magic")

    def test_period_grows_with_mtbf(self):
        assert paper_optimal_period(600.0, 14400.0, 60.0, 600.0) > paper_optimal_period(
            600.0, 7200.0, 60.0, 600.0
        )


class TestPeriodicFinalTime:
    def test_hand_computed_value(self):
        # mu = 120 min, C = R = 10 min, D = 1 min (Figure 7 parameters).
        mu, c, r, d = 120 * MINUTE, 10 * MINUTE, 10 * MINUTE, 1 * MINUTE
        period = paper_optimal_period(c, mu, d, r)
        efficiency = (1 - c / period) * (1 - (d + r + period / 2) / mu)
        expected = 1000.0 / efficiency
        assert periodic_final_time(1000.0, c, mu, d, r) == pytest.approx(expected)

    def test_zero_work(self):
        assert periodic_final_time(0.0, 600.0, 7200.0, 60.0, 600.0) == 0.0

    def test_zero_checkpoint_cost(self):
        # Only the per-failure D + R overhead remains.
        result = periodic_final_time(1000.0, 0.0, 7200.0, 60.0, 600.0)
        assert result == pytest.approx(1000.0 / (1 - 660.0 / 7200.0))

    def test_infeasible_regime(self):
        # Checkpoint cost far above the MTBF: no progress possible.
        assert math.isinf(periodic_final_time(1000.0, 6000.0, 600.0, 60.0, 600.0))

    def test_custom_period_is_suboptimal(self):
        mu, c, r, d = 120 * MINUTE, 10 * MINUTE, 10 * MINUTE, 1 * MINUTE
        optimal = periodic_final_time(1000.0, c, mu, d, r)
        away = periodic_final_time(1000.0, c, mu, d, r, period=3 * paper_optimal_period(c, mu, d, r))
        assert away > optimal

    def test_final_time_exceeds_work(self):
        assert periodic_final_time(1000.0, 60.0, 7200.0, 10.0, 60.0) > 1000.0


class TestUnprotectedFinalTime:
    def test_equation_9(self):
        mu, d, r = 7200.0, 60.0, 600.0
        work = 1000.0
        expected = work / (1 - (d + r + work / 2) / mu)
        assert unprotected_final_time(work, mu, d, r) == pytest.approx(expected)

    def test_zero_work(self):
        assert unprotected_final_time(0.0, 7200.0, 60.0, 600.0) == 0.0

    def test_infeasible_when_phase_too_long(self):
        assert math.isinf(unprotected_final_time(20000.0, 7200.0, 60.0, 600.0))


class TestFirstOrderWaste:
    def test_bounded(self):
        waste = first_order_waste(600.0, 7200.0, 60.0, 600.0)
        assert 0.0 < waste < 1.0

    def test_decreases_with_mtbf(self):
        assert first_order_waste(600.0, 4 * 7200.0, 60.0, 600.0) < first_order_waste(
            600.0, 7200.0, 60.0, 600.0
        )

    def test_infeasible_clipped_to_one(self):
        assert first_order_waste(6000.0, 600.0, 60.0, 600.0) == 1.0
