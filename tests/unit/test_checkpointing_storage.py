"""Unit tests for the checkpoint storage substrates."""

from __future__ import annotations

import pytest

from repro.checkpointing import (
    BuddyStorage,
    IncrementalCheckpointing,
    LocalStorage,
    MultiLevelStorage,
    RemoteFileSystemStorage,
)
from repro.utils import GB


class TestRemoteFileSystemStorage:
    def test_write_time_proportional_to_data(self):
        storage = RemoteFileSystemStorage(write_bandwidth=100 * GB)
        assert storage.write_time(600 * GB, 1000) == pytest.approx(6.0)
        assert storage.write_time(1200 * GB, 1000) == pytest.approx(12.0)

    def test_independent_of_node_count(self):
        storage = RemoteFileSystemStorage(write_bandwidth=100 * GB)
        assert storage.write_time(600 * GB, 10) == storage.write_time(600 * GB, 10000)

    def test_read_bandwidth_defaults_to_write(self):
        storage = RemoteFileSystemStorage(write_bandwidth=50 * GB)
        assert storage.read_time(100 * GB, 1) == storage.write_time(100 * GB, 1)

    def test_latency_added(self):
        storage = RemoteFileSystemStorage(write_bandwidth=1 * GB, latency=2.0)
        assert storage.write_time(1 * GB, 1) == pytest.approx(3.0)

    def test_zero_data(self):
        storage = RemoteFileSystemStorage(write_bandwidth=1 * GB, latency=2.0)
        assert storage.write_time(0.0, 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RemoteFileSystemStorage(write_bandwidth=0.0)
        storage = RemoteFileSystemStorage(write_bandwidth=1 * GB)
        with pytest.raises(ValueError):
            storage.write_time(-1.0, 1)
        with pytest.raises(ValueError):
            storage.write_time(1.0, 0)


class TestLocalStorage:
    def test_constant_under_weak_scaling(self):
        storage = LocalStorage(node_write_bandwidth=1 * GB)
        # Per-node volume constant: 10 GB per node.
        small = storage.write_time(10 * GB * 100, 100)
        large = storage.write_time(10 * GB * 100000, 100000)
        assert small == pytest.approx(large)
        assert small == pytest.approx(10.0)

    def test_checkpoint_and_restart_times(self):
        storage = LocalStorage(node_write_bandwidth=2 * GB, node_read_bandwidth=1 * GB)
        c, r = storage.checkpoint_and_restart_times(100 * GB, 100)
        assert c == pytest.approx(0.5)
        assert r == pytest.approx(1.0)


class TestBuddyStorage:
    def test_constant_under_weak_scaling(self):
        storage = BuddyStorage(link_bandwidth=5 * GB)
        assert storage.write_time(10 * GB * 1000, 1000) == pytest.approx(2.0)
        assert storage.write_time(10 * GB * 10**6, 10**6) == pytest.approx(2.0)

    def test_read_equals_write(self):
        storage = BuddyStorage(link_bandwidth=5 * GB)
        assert storage.read_time(100 * GB, 10) == storage.write_time(100 * GB, 10)

    def test_survival_probability_decreases_with_exposure(self):
        storage = BuddyStorage(link_bandwidth=5 * GB)
        assert storage.survival_probability(3600.0, 0.0) == 1.0
        assert storage.survival_probability(3600.0, 60.0) < 1.0
        assert storage.survival_probability(3600.0, 600.0) < storage.survival_probability(
            3600.0, 60.0
        )


class TestMultiLevelStorage:
    def test_write_is_between_levels(self):
        local = LocalStorage(node_write_bandwidth=10 * GB)
        remote = RemoteFileSystemStorage(write_bandwidth=100 * GB)
        multi = MultiLevelStorage(local, remote, remote_fraction=0.5)
        data, nodes = 1000 * GB, 100
        assert (
            local.write_time(data, nodes)
            < multi.write_time(data, nodes)
            < local.write_time(data, nodes) + remote.write_time(data, nodes)
        )

    def test_zero_remote_fraction_behaves_like_local(self):
        local = LocalStorage(node_write_bandwidth=10 * GB)
        remote = RemoteFileSystemStorage(write_bandwidth=100 * GB)
        multi = MultiLevelStorage(local, remote, remote_fraction=0.0, remote_read_fraction=0.0)
        assert multi.write_time(100 * GB, 10) == local.write_time(100 * GB, 10)
        assert multi.read_time(100 * GB, 10) == local.read_time(100 * GB, 10)


class TestIncrementalCheckpointing:
    def test_write_covers_only_modified_fraction(self):
        base = RemoteFileSystemStorage(write_bandwidth=1 * GB)
        incremental = IncrementalCheckpointing(base, modified_fraction=0.8)
        assert incremental.write_time(100 * GB, 10) == pytest.approx(
            0.8 * base.write_time(100 * GB, 10)
        )

    def test_read_covers_full_dataset(self):
        base = RemoteFileSystemStorage(write_bandwidth=1 * GB)
        incremental = IncrementalCheckpointing(base, modified_fraction=0.2)
        assert incremental.read_time(100 * GB, 10) == base.read_time(100 * GB, 10)

    def test_validation(self):
        base = RemoteFileSystemStorage(write_bandwidth=1 * GB)
        with pytest.raises(ValueError):
            IncrementalCheckpointing(base, modified_fraction=1.5)
