"""Unit tests for the extensible protocol / failure-model registry."""

from __future__ import annotations

import pytest

from repro.core import registry
from repro.core.analytical import (
    AbftPeriodicCkptModel,
    BiPeriodicCkptModel,
    PurePeriodicCkptModel,
)
from repro.core.protocols import (
    AbftPeriodicCkptSimulator,
    BiPeriodicCkptSimulator,
    PurePeriodicCkptSimulator,
)
from repro.failures import (
    ExponentialFailureModel,
    LogNormalFailureModel,
    TraceFailureModel,
    WeibullFailureModel,
)


class TestProtocolLookup:
    def test_canonical_names_in_paper_order(self):
        assert registry.protocol_names(paper_only=True) == (
            "PurePeriodicCkpt",
            "BiPeriodicCkpt",
            "ABFT&PeriodicCkpt",
        )

    def test_noft_registered_but_not_in_pairs(self):
        assert "NoFT" in registry.protocol_names()
        assert "NoFT" not in registry.PROTOCOL_PAIRS

    def test_alias_and_case_insensitive_lookup(self):
        assert registry.resolve_protocol("abft").name == "ABFT&PeriodicCkpt"
        assert registry.resolve_protocol("COMPOSITE").name == "ABFT&PeriodicCkpt"
        assert registry.resolve_protocol("purEPeriodicCkpt").name == "PurePeriodicCkpt"

    def test_entry_pairs_match_classes(self):
        assert registry.resolve_protocol("PurePeriodicCkpt").pair == (
            PurePeriodicCkptModel,
            PurePeriodicCkptSimulator,
        )
        assert registry.resolve_protocol("bi").pair == (
            BiPeriodicCkptModel,
            BiPeriodicCkptSimulator,
        )
        assert registry.resolve_protocol("composite").pair == (
            AbftPeriodicCkptModel,
            AbftPeriodicCkptSimulator,
        )

    def test_unknown_protocol_error_lists_and_suggests(self):
        with pytest.raises(registry.UnknownProtocolError) as excinfo:
            registry.resolve_protocol("BiPeriodikCkpt")
        message = str(excinfo.value)
        assert "BiPeriodicCkpt" in message
        assert "did you mean" in message
        assert "PurePeriodicCkpt" in message

    def test_unknown_protocol_error_is_keyerror_and_valueerror(self):
        with pytest.raises(KeyError):
            registry.resolve_protocol("nope")
        with pytest.raises(ValueError):
            registry.resolve_protocol("nope")


class TestProtocolPairsShim:
    def test_mapping_protocol(self):
        pairs = registry.PROTOCOL_PAIRS
        assert len(pairs) == 3
        assert sorted(pairs) == [
            "ABFT&PeriodicCkpt",
            "BiPeriodicCkpt",
            "PurePeriodicCkpt",
        ]
        assert pairs["PurePeriodicCkpt"][0] is PurePeriodicCkptModel
        assert dict(pairs)  # Mapping -> dict round trip works

    def test_getitem_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            registry.PROTOCOL_PAIRS["NotAProtocol"]

    def test_getitem_agrees_with_contains(self):
        # The view keeps the original dict's contract: exact canonical paper
        # names only.  Aliases and non-paper entries belong to
        # resolve_protocol, and __getitem__ must match __contains__.
        for name in ("NoFT", "pure", "purePeriodicCkpt"):
            assert name not in registry.PROTOCOL_PAIRS
            with pytest.raises(KeyError):
                registry.PROTOCOL_PAIRS[name]
            assert registry.PROTOCOL_PAIRS.get(name) is None

    def test_protocol_names_constant(self):
        assert registry.PROTOCOL_NAMES == tuple(registry.PROTOCOL_PAIRS)


class TestRegistration:
    def test_register_and_resolve_custom_protocol(self):
        @registry.register_protocol("TestOnlyCkpt", kind="model", aliases=("toc",))
        class TestOnlyModel:
            def __init__(self, parameters):
                self.parameters = parameters

        @registry.register_protocol("TestOnlyCkpt", kind="simulator")
        class TestOnlySimulator:
            def __init__(self, parameters, workload, *, failure_model=None):
                self.failure_model = failure_model

        try:
            entry = registry.resolve_protocol("toc")
            assert entry.name == "TestOnlyCkpt"
            assert entry.pair == (TestOnlyModel, TestOnlySimulator)
            # The new protocol shows up in the listing but not in the paper view.
            assert "TestOnlyCkpt" in registry.protocol_names()
            assert "TestOnlyCkpt" in registry.PROTOCOL_PAIRS
        finally:
            registry._PROTOCOLS.pop("TestOnlyCkpt")
            for key in ("testonlyckpt", "toc"):
                registry._PROTOCOL_LOOKUP.pop(key, None)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            registry.register_protocol("X", kind="neither")

    def test_conflicting_alias_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @registry.register_protocol("Imposter", kind="model", aliases=("pure",))
            class ImposterModel:
                pass

        registry._PROTOCOLS.pop("Imposter", None)
        registry._PROTOCOL_LOOKUP.pop("imposter", None)


class TestFailureModelLookup:
    def test_names(self):
        assert registry.failure_model_names() == (
            "exponential",
            "weibull",
            "lognormal",
            "trace",
        )

    def test_create_each_builtin(self):
        exp = registry.create_failure_model("exponential", 3600.0)
        assert isinstance(exp, ExponentialFailureModel) and exp.mtbf == 3600.0
        wbl = registry.create_failure_model("weibull", 3600.0, shape=0.7)
        assert isinstance(wbl, WeibullFailureModel) and wbl.shape == 0.7
        logn = registry.create_failure_model("log-normal", 3600.0, sigma=1.5)
        assert isinstance(logn, LogNormalFailureModel) and logn.sigma == 1.5

    def test_trace_factory_requires_data(self):
        with pytest.raises(ValueError, match="interarrivals"):
            registry.create_failure_model("trace", 3600.0)

    def test_trace_factory_rescales_to_target_mtbf(self):
        model = registry.create_failure_model(
            "trace", 100.0, interarrivals=(10.0, 30.0)
        )
        assert isinstance(model, TraceFailureModel)
        assert model.mtbf == pytest.approx(100.0)

    def test_trace_factory_from_failure_times(self):
        model = registry.create_failure_model(
            "trace", None, failure_times=(5.0, 10.0, 20.0), cycle=False
        )
        assert isinstance(model, TraceFailureModel)
        assert not model.cycle

    def test_exponential_requires_mtbf(self):
        with pytest.raises(ValueError, match="mtbf"):
            registry.create_failure_model("exponential")

    def test_unknown_failure_model_suggests(self):
        with pytest.raises(registry.UnknownFailureModelError) as excinfo:
            registry.resolve_failure_model("weibul")
        assert "did you mean 'weibull'" in str(excinfo.value)


class TestResolveTriple:
    def test_bound_triple(self, paper_parameters, paper_workload):
        bound = registry.resolve(
            "abft",
            paper_parameters,
            paper_workload,
            failure_model="weibull",
            failure_params={"shape": 0.7},
        )
        assert isinstance(bound.model, AbftPeriodicCkptModel)
        assert isinstance(bound.simulator, AbftPeriodicCkptSimulator)
        assert isinstance(bound.failure_model, WeibullFailureModel)
        assert bound.failure_model.mtbf == paper_parameters.platform_mtbf
        assert bound.simulator.failure_model is bound.failure_model

    def test_default_exponential(self, paper_parameters, paper_workload):
        bound = registry.resolve("pure", paper_parameters, paper_workload)
        assert isinstance(bound.failure_model, ExponentialFailureModel)
