"""Unit tests for the discrete-event protocol simulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ApplicationWorkload
from repro.core.protocols import (
    AbftPeriodicCkptSimulator,
    BiPeriodicCkptSimulator,
    NoFaultToleranceSimulator,
    PurePeriodicCkptSimulator,
)
from repro.failures import FailureTimeline
from repro.simulation.events import EventKind
from repro.utils import HOUR, MINUTE


class TestFailureFreeExecutions:
    """With a failure-free timeline the makespan equals the fault-free time."""

    def test_pure_periodic_fault_free_makespan(self, paper_parameters, small_workload):
        simulator = PurePeriodicCkptSimulator(paper_parameters, small_workload)
        trace = simulator.simulate(timeline=FailureTimeline.from_times([]))
        period = simulator.period()
        work = small_workload.total_time
        checkpoints = int(np.ceil(work / (period - paper_parameters.full_checkpoint))) - 1
        expected = work + checkpoints * paper_parameters.full_checkpoint
        assert trace.failure_count == 0
        assert trace.makespan == pytest.approx(expected, rel=1e-6)
        assert trace.breakdown.useful_work == pytest.approx(work)
        assert trace.breakdown.lost_work == 0.0

    def test_composite_fault_free_makespan(self, paper_parameters, small_workload):
        simulator = AbftPeriodicCkptSimulator(paper_parameters, small_workload)
        trace = simulator.simulate(timeline=FailureTimeline.from_times([]))
        params = paper_parameters
        general = small_workload.total_general_time
        library = small_workload.total_library_time
        period = simulator.general_period()
        # General phase (longer than the period here): periodic checkpoints,
        # trailing one included; library: phi * T_L + exit checkpoint C_L.
        chunks = int(np.ceil(general / (period - params.full_checkpoint)))
        expected = (
            general
            + chunks * params.full_checkpoint
            + params.phi * library
            + params.library_checkpoint
        )
        assert trace.makespan == pytest.approx(expected, rel=1e-6)
        assert trace.breakdown.abft_overhead == pytest.approx(
            (params.phi - 1.0) * library, rel=1e-6
        )

    def test_no_ft_fault_free(self, paper_parameters, small_workload):
        trace = NoFaultToleranceSimulator(paper_parameters, small_workload).simulate(
            timeline=FailureTimeline.from_times([])
        )
        assert trace.makespan == pytest.approx(small_workload.total_time)
        assert trace.waste == pytest.approx(0.0)


class TestScriptedFailures:
    """Deterministic scenarios with hand-placed failures."""

    def test_single_failure_rolls_back_to_last_checkpoint(self, paper_parameters):
        workload = ApplicationWorkload.single_epoch(4 * HOUR, 0.0)
        simulator = PurePeriodicCkptSimulator(
            paper_parameters, workload, period=60 * MINUTE
        )
        # One failure 30 minutes into the second period.
        fail_time = 60 * MINUTE + 30 * MINUTE
        trace = simulator.simulate(timeline=FailureTimeline.from_times([fail_time]))
        no_fail = simulator.simulate(timeline=FailureTimeline.from_times([]))
        lost = 30 * MINUTE  # work+checkpoint time elapsed in the failed period
        penalty = paper_parameters.downtime + paper_parameters.full_recovery
        assert trace.failure_count == 1
        assert trace.makespan == pytest.approx(no_fail.makespan + lost + penalty)
        assert trace.breakdown.lost_work == pytest.approx(lost)

    def test_failure_during_abft_library_loses_no_work(self, paper_parameters):
        workload = ApplicationWorkload.single_epoch(10 * HOUR, 1.0)
        simulator = AbftPeriodicCkptSimulator(paper_parameters, workload)
        fail_time = 2 * HOUR
        trace = simulator.simulate(timeline=FailureTimeline.from_times([fail_time]))
        no_fail = simulator.simulate(timeline=FailureTimeline.from_times([]))
        penalty = paper_parameters.abft_failure_cost
        assert trace.failure_count == 1
        assert trace.makespan == pytest.approx(no_fail.makespan + penalty)
        assert trace.breakdown.lost_work == 0.0
        assert trace.breakdown.abft_recovery == pytest.approx(
            paper_parameters.abft_reconstruction
        )

    def test_failure_during_recovery_restarts_recovery(self, paper_parameters):
        workload = ApplicationWorkload.single_epoch(4 * HOUR, 0.0)
        simulator = PurePeriodicCkptSimulator(
            paper_parameters, workload, period=60 * MINUTE
        )
        first_failure = 90 * MINUTE
        # Second failure strikes 2 minutes into the downtime+recovery window.
        second_failure = first_failure + 2 * MINUTE
        trace = simulator.simulate(
            timeline=FailureTimeline.from_times([first_failure, second_failure])
        )
        no_fail = simulator.simulate(timeline=FailureTimeline.from_times([]))
        penalty = paper_parameters.downtime + paper_parameters.full_recovery
        expected = no_fail.makespan + 30 * MINUTE + 2 * MINUTE + penalty
        assert trace.failure_count == 2
        assert trace.makespan == pytest.approx(expected)

    def test_composite_short_general_phase_restarts_from_phase_start(
        self, paper_parameters
    ):
        # General phase (20 min) shorter than the optimal period: a failure
        # inside it re-executes the phase from its beginning.
        workload = ApplicationWorkload.single_epoch(100 * MINUTE, 0.8)
        simulator = AbftPeriodicCkptSimulator(paper_parameters, workload)
        fail_time = 10 * MINUTE
        trace = simulator.simulate(timeline=FailureTimeline.from_times([fail_time]))
        no_fail = simulator.simulate(timeline=FailureTimeline.from_times([]))
        penalty = paper_parameters.downtime + paper_parameters.full_recovery
        assert trace.makespan == pytest.approx(
            no_fail.makespan + 10 * MINUTE + penalty
        )


class TestTraceConsistency:
    def test_breakdown_sums_to_makespan(self, paper_parameters, small_workload, rng):
        for simulator_cls in (
            PurePeriodicCkptSimulator,
            BiPeriodicCkptSimulator,
            AbftPeriodicCkptSimulator,
        ):
            simulator = simulator_cls(paper_parameters, small_workload)
            trace = simulator.simulate(rng=rng)
            assert trace.breakdown.total == pytest.approx(trace.makespan, rel=1e-9)

    def test_useful_work_equals_application_time(
        self, paper_parameters, small_workload, rng
    ):
        for simulator_cls in (
            PurePeriodicCkptSimulator,
            BiPeriodicCkptSimulator,
            AbftPeriodicCkptSimulator,
        ):
            trace = simulator_cls(paper_parameters, small_workload).simulate(rng=rng)
            assert trace.breakdown.useful_work == pytest.approx(
                small_workload.total_time, rel=1e-9
            )

    def test_waste_non_negative_and_below_one(
        self, paper_parameters, small_workload, rng
    ):
        for simulator_cls in (
            NoFaultToleranceSimulator,
            PurePeriodicCkptSimulator,
            BiPeriodicCkptSimulator,
            AbftPeriodicCkptSimulator,
        ):
            trace = simulator_cls(paper_parameters, small_workload).simulate(rng=rng)
            assert 0.0 <= trace.waste < 1.0

    def test_reproducible_with_same_seed(self, paper_parameters, small_workload):
        simulator = AbftPeriodicCkptSimulator(paper_parameters, small_workload)
        a = simulator.simulate(seed=123)
        b = simulator.simulate(seed=123)
        assert a.makespan == b.makespan
        assert a.failure_count == b.failure_count

    def test_no_periodic_checkpoint_inside_abft_phase(
        self, paper_parameters, small_workload
    ):
        simulator = AbftPeriodicCkptSimulator(
            paper_parameters, small_workload, record_events=True
        )
        trace = simulator.simulate(seed=3)
        # Checkpoints recorded during the ABFT section can only be the exit
        # partial checkpoint, which carries payload during='checkpoint' when
        # it fails; assert there is exactly one checkpoint per library phase
        # plus the periodic ones of the general phase.
        library_starts = trace.count_events(EventKind.LIBRARY_PHASE_START)
        library_ends = trace.count_events(EventKind.LIBRARY_PHASE_END)
        assert library_starts == library_ends == small_workload.epoch_count

    def test_metadata_contains_period(self, paper_parameters, small_workload):
        trace = PurePeriodicCkptSimulator(paper_parameters, small_workload).simulate(seed=1)
        assert trace.metadata["period"] > 0
        assert trace.metadata["truncated"] is False

    def test_truncation_in_infeasible_regime(self, paper_parameters):
        # MTBF of 2 minutes with 10-minute checkpoints: hopeless regime.
        params = paper_parameters.with_mtbf(2 * MINUTE)
        workload = ApplicationWorkload.single_epoch(10 * HOUR, 0.0)
        simulator = PurePeriodicCkptSimulator(
            params, workload, max_slowdown=20.0
        )
        trace = simulator.simulate(seed=5)
        assert trace.metadata["truncated"] is True
        assert trace.waste > 0.9

    def test_max_slowdown_validation(self, paper_parameters, small_workload):
        with pytest.raises(ValueError):
            PurePeriodicCkptSimulator(paper_parameters, small_workload, max_slowdown=0.5)
