"""Unit tests for the experiment harness (configs, sweeps, figure generators)."""

from __future__ import annotations

import math

import pytest

from repro.application.scaling import ScalingMode
from repro.core.analytical import PurePeriodicCkptModel
from repro.experiments import (
    paper_figure7_config,
    paper_figure8_scenario,
    paper_figure9_scenario,
    paper_figure10_scenario,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    sweep_mtbf_alpha,
    validate_configuration,
)
from repro.experiments.figure7 import PROTOCOLS
from repro.utils import MINUTE, WEEK


class TestConfig:
    def test_paper_figure7_grid(self):
        config = paper_figure7_config()
        assert config.application_time == 1 * WEEK
        assert config.checkpoint == 10 * MINUTE
        assert config.mtbf_values[0] == 60 * MINUTE
        assert config.mtbf_values[-1] == 240 * MINUTE
        assert config.alpha_values[0] == 0.0
        assert config.alpha_values[-1] == 1.0

    def test_reduced_grid(self):
        reduced = paper_figure7_config().reduced(mtbf_count=3, alpha_count=4)
        assert len(reduced.mtbf_values) == 3
        assert len(reduced.alpha_values) == 4
        assert reduced.checkpoint == 10 * MINUTE

    def test_parameters_helper(self):
        params = paper_figure7_config().parameters(100 * MINUTE)
        assert params.mtbf == 100 * MINUTE
        assert params.rho == 0.8

    def test_figure_scenarios_differ_as_documented(self):
        fig8 = paper_figure8_scenario()
        fig9 = paper_figure9_scenario()
        fig10 = paper_figure10_scenario()
        assert fig8.general_law.complexity_exponent == 3.0
        assert fig9.general_law.complexity_exponent == 2.0
        assert fig9.checkpoint_scaling is ScalingMode.LINEAR
        assert fig10.checkpoint_scaling is ScalingMode.CONSTANT


class TestSweep:
    def test_sweep_covers_full_grid(self, paper_parameters):
        points = list(
            sweep_mtbf_alpha(
                paper_parameters,
                1 * WEEK,
                [60 * MINUTE, 120 * MINUTE],
                [0.0, 0.5, 1.0],
                [PurePeriodicCkptModel],
            )
        )
        assert len(points) == 6
        assert all("PurePeriodicCkpt" in p.waste for p in points)
        assert {p.alpha for p in points} == {0.0, 0.5, 1.0}


class TestFigure7:
    def test_model_only_run(self):
        config = paper_figure7_config().reduced(mtbf_count=3, alpha_count=3)
        result = run_figure7(config)
        assert len(result.rows) == 9
        assert not result.validated
        grid = result.waste_grid("PurePeriodicCkpt")
        assert len(grid) == 9
        assert all(0.0 <= w <= 1.0 for w in grid.values())

    def test_pure_waste_constant_in_alpha_and_composite_decreasing(self):
        config = paper_figure7_config().reduced(mtbf_count=2, alpha_count=5)
        result = run_figure7(config)
        for mtbf in config.mtbf_values:
            pure = [
                result.waste_grid("PurePeriodicCkpt")[(mtbf, a)]
                for a in config.alpha_values
            ]
            composite = [
                result.waste_grid("ABFT&PeriodicCkpt")[(mtbf, a)]
                for a in config.alpha_values
            ]
            assert max(pure) == pytest.approx(min(pure))
            assert composite[-1] < composite[0]

    def test_validation_adds_simulated_columns(self):
        config = paper_figure7_config().reduced(mtbf_count=2, alpha_count=2)
        result = run_figure7(config, validate=True, simulation_runs=20, seed=1)
        assert result.validated
        for row in result.rows:
            assert set(row.simulated_waste) == set(PROTOCOLS)
            for protocol in PROTOCOLS:
                assert row.difference(protocol) is not None
        assert result.max_difference("PurePeriodicCkpt") < 0.15

    def test_table_and_csv(self, tmp_path):
        config = paper_figure7_config().reduced(mtbf_count=2, alpha_count=2)
        result = run_figure7(config)
        text = result.to_table().to_text()
        assert "Figure 7" in text
        path = result.write_csv(tmp_path / "figure7.csv")
        assert path.exists()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            run_figure7(protocols=("NotAProtocol",))


class TestWeakScalingFigures:
    def test_figure8_rows_and_series(self):
        result = run_figure8()
        assert [row.node_count for row in result.rows] == [
            1_000,
            10_000,
            100_000,
            1_000_000,
        ]
        assert all(row.alpha == pytest.approx(0.8) for row in result.rows)
        series = result.waste_series("ABFT&PeriodicCkpt")
        assert len(series) == 4

    def test_figure8_composite_wins_at_scale(self):
        result = run_figure8()
        at_100k = next(row for row in result.rows if row.node_count == 100_000)
        assert (
            at_100k.waste["ABFT&PeriodicCkpt"]
            < at_100k.waste["BiPeriodicCkpt"]
            <= at_100k.waste["PurePeriodicCkpt"]
        )
        crossover = result.crossover_node_count()
        assert crossover is not None and crossover <= 100_000

    def test_figure8_composite_slightly_worse_at_small_scale(self):
        result = run_figure8()
        at_1k = next(row for row in result.rows if row.node_count == 1_000)
        assert at_1k.waste["ABFT&PeriodicCkpt"] > at_1k.waste["PurePeriodicCkpt"]

    def test_figure9_alpha_grows_with_scale(self):
        result = run_figure9()
        alphas = [row.alpha for row in result.rows]
        assert alphas == sorted(alphas)
        assert alphas[0] == pytest.approx(0.55, abs=0.01)
        assert alphas[-1] == pytest.approx(0.975, abs=0.001)

    def test_figure10_constant_checkpoint_cost(self):
        result = run_figure10()
        costs = [row.checkpoint_cost for row in result.rows]
        assert all(cost == pytest.approx(60.0) for cost in costs)

    def test_figure10_periodic_protocols_benefit_from_constant_cost(self):
        with_growth = run_figure9(mtbf_scaling=ScalingMode.CONSTANT)
        without_growth = run_figure10(mtbf_scaling=ScalingMode.CONSTANT)
        last_growth = with_growth.rows[-1]
        last_const = without_growth.rows[-1]
        assert (
            last_const.waste["PurePeriodicCkpt"]
            < last_growth.waste["PurePeriodicCkpt"]
        )

    def test_figure10_composite_still_wins_at_million_nodes(self):
        result = run_figure10()
        last = result.rows[-1]
        assert last.waste["ABFT&PeriodicCkpt"] < last.waste["PurePeriodicCkpt"]
        assert last.waste["ABFT&PeriodicCkpt"] < last.waste["BiPeriodicCkpt"]

    def test_expected_failures_increase_with_scale(self):
        result = run_figure9()
        failures = [row.expected_failures["ABFT&PeriodicCkpt"] for row in result.rows]
        assert all(b > a for a, b in zip(failures, failures[1:]))

    def test_table_and_csv(self, tmp_path):
        result = run_figure10()
        assert "Figure 10" in result.to_table().to_text()
        assert result.write_csv(tmp_path / "fig10.csv").exists()

    def test_infeasible_regime_reported_as_full_waste(self):
        # Literal text reading at a million nodes: C = 100 min > mu = 14.4 min.
        result = run_figure8(mtbf_scaling=ScalingMode.INVERSE)
        last = result.rows[-1]
        assert last.waste["PurePeriodicCkpt"] == 1.0
        assert math.isinf(last.expected_failures["PurePeriodicCkpt"])


class TestValidateConfiguration:
    def test_returns_consistent_point(self, paper_parameters, small_workload):
        point = validate_configuration(
            "ABFT&PeriodicCkpt",
            paper_parameters,
            small_workload,
            runs=50,
            seed=9,
        )
        assert point.protocol == "ABFT&PeriodicCkpt"
        assert point.difference == pytest.approx(
            point.simulated_waste - point.model_waste
        )
        assert abs(point.difference) < 0.1
        assert point.simulation.runs == 50

    def test_unknown_protocol(self, paper_parameters, small_workload):
        with pytest.raises(ValueError):
            validate_configuration("Nope", paper_parameters, small_workload)
