"""Mirror of the CI lint: no public checkpointing name may go dormant."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOL = REPO_ROOT / "tools" / "check_checkpointing_refs.py"


def test_no_dormant_checkpointing_api():
    result = subprocess.run(
        [sys.executable, str(TOOL)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr or result.stdout
