"""Unit tests for :class:`repro.failures.timeline.FailureTimeline`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.failures import ExponentialFailureModel, FailureTimeline


class TestFailureTimeline:
    def test_next_failure_is_strictly_after_query(self, rng):
        timeline = FailureTimeline(ExponentialFailureModel(10.0), rng)
        t = timeline.next_failure_after(0.0)
        assert t > 0.0
        assert timeline.next_failure_after(t) > t

    def test_monotone_queries(self, rng):
        timeline = FailureTimeline(ExponentialFailureModel(5.0), rng)
        previous = 0.0
        for _ in range(100):
            nxt = timeline.next_failure_after(previous)
            assert nxt > previous
            previous = nxt

    def test_idempotent_query(self, rng):
        timeline = FailureTimeline(ExponentialFailureModel(5.0), rng)
        assert timeline.next_failure_after(3.0) == timeline.next_failure_after(3.0)

    def test_negative_time_clamped(self, rng):
        timeline = FailureTimeline(ExponentialFailureModel(5.0), rng)
        assert timeline.next_failure_after(-10.0) > 0.0

    def test_failures_in_interval(self, rng):
        timeline = FailureTimeline(ExponentialFailureModel(1.0), rng)
        failures = timeline.failures_in(0.0, 100.0)
        assert np.all(failures > 0.0)
        assert np.all(failures <= 100.0)
        assert np.all(np.diff(failures) > 0)

    def test_failures_in_rejects_reversed_interval(self, rng):
        timeline = FailureTimeline(ExponentialFailureModel(1.0), rng)
        with pytest.raises(ValueError):
            timeline.failures_in(10.0, 5.0)

    def test_count_until(self, rng):
        timeline = FailureTimeline(ExponentialFailureModel(1.0), rng)
        count = timeline.count_failures_until(500.0)
        assert count == pytest.approx(500, rel=0.25)

    def test_from_times_scripted(self):
        timeline = FailureTimeline.from_times([5.0, 12.0])
        assert timeline.next_failure_after(0.0) == 5.0
        assert timeline.next_failure_after(5.0) == 12.0
        # Past the script: the guard value means "no further failure".
        assert timeline.next_failure_after(12.0) > 1e20

    def test_from_times_empty_means_no_failures(self):
        timeline = FailureTimeline.from_times([])
        assert timeline.next_failure_after(0.0) > 1e20

    def test_from_times_validates_order(self):
        with pytest.raises(ValueError):
            FailureTimeline.from_times([3.0, 2.0])

    def test_bad_batch_size(self, rng):
        with pytest.raises(ValueError):
            FailureTimeline(ExponentialFailureModel(1.0), rng, batch_size=0)

    def test_determinism_for_same_seed(self):
        model = ExponentialFailureModel(3.0)
        t1 = FailureTimeline(model, np.random.default_rng(9))
        t2 = FailureTimeline(model, np.random.default_rng(9))
        assert t1.next_failure_after(0.0) == t2.next_failure_after(0.0)


class TestBufferedTimeline:
    """The preallocated-buffer rework and the stream reproducibility guarantee."""

    def test_ensure_count_materialises_at_least_n(self, rng):
        timeline = FailureTimeline(ExponentialFailureModel(5.0), rng)
        timeline.ensure_count(200)
        assert timeline.generated_count >= 200

    def test_times_view_is_sorted_and_read_only(self, rng):
        timeline = FailureTimeline(ExponentialFailureModel(5.0), rng)
        timeline.ensure_count(100)
        times = timeline.times
        assert times.size == timeline.generated_count
        assert np.all(np.diff(times) > 0)
        with pytest.raises(ValueError):
            times[0] = 0.0

    def test_growth_preserves_earlier_values(self):
        model = ExponentialFailureModel(3.0)
        timeline = FailureTimeline(model, np.random.default_rng(5))
        timeline.ensure_count(10)
        head = timeline.times[:10].copy()
        timeline.ensure_count(1000)  # forces several buffer growths
        assert np.array_equal(timeline.times[:10], head)

    def test_stream_independent_of_query_pattern(self):
        """The value sequence must not depend on how the stream is consumed."""
        model = ExponentialFailureModel(3.0)
        eager = FailureTimeline(model, np.random.default_rng(9))
        eager.ensure_count(300)
        lazy = FailureTimeline(model, np.random.default_rng(9))
        current = 0.0
        for _ in range(250):
            current = lazy.next_failure_after(current)
        count = min(eager.generated_count, lazy.generated_count)
        assert np.array_equal(eager.times[:count], lazy.times[:count])

    def test_block_draws_match_scalar_draws(self):
        """sample_interarrivals(n) consumes the bit stream exactly like n
        scalar draws, for every stochastic law -- the foundation of the
        batched-prefill guarantee."""
        from repro.failures import LogNormalFailureModel, WeibullFailureModel

        for model in (
            ExponentialFailureModel(7200.0),
            WeibullFailureModel(7200.0, shape=0.7),
            LogNormalFailureModel(7200.0, sigma=1.0),
        ):
            scalar_rng = np.random.default_rng(42)
            batch_rng = np.random.default_rng(42)
            scalars = np.array(
                [model.sample_interarrival(scalar_rng) for _ in range(256)]
            )
            batch = model.sample_interarrivals(batch_rng, 256)
            assert np.array_equal(scalars, batch), type(model).__name__
