"""Unit tests for traces, breakdowns and the trace recorder."""

from __future__ import annotations

import pytest

from repro.simulation import EventKind, ExecutionTrace, TimeBreakdown, TraceRecorder


class TestTimeBreakdown:
    def test_add_and_total(self):
        breakdown = TimeBreakdown()
        breakdown.add("useful_work", 10.0)
        breakdown.add("checkpointing", 2.0)
        breakdown.add("useful_work", 5.0)
        assert breakdown.useful_work == 15.0
        assert breakdown.total == 17.0
        assert breakdown.overhead == 2.0

    def test_unknown_category(self):
        with pytest.raises(KeyError):
            TimeBreakdown().add("coffee", 1.0)

    def test_negative_amount(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("useful_work", -1.0)

    def test_as_dict_keys(self):
        data = TimeBreakdown().as_dict()
        assert set(data) == set(TimeBreakdown._FIELDS)

    def test_merge(self):
        a = TimeBreakdown(useful_work=1.0, downtime=2.0)
        b = TimeBreakdown(useful_work=3.0, recovery=4.0)
        merged = a.merge(b)
        assert merged.useful_work == 4.0
        assert merged.downtime == 2.0
        assert merged.recovery == 4.0
        # originals untouched
        assert a.useful_work == 1.0


class TestExecutionTrace:
    def test_waste_formula(self):
        trace = ExecutionTrace(
            protocol="p",
            application_time=100.0,
            makespan=125.0,
            failure_count=2,
            breakdown=TimeBreakdown(useful_work=100.0, lost_work=25.0),
        )
        assert trace.waste == pytest.approx(0.2)
        assert trace.slowdown == pytest.approx(1.25)

    def test_event_filtering(self):
        recorder = TraceRecorder("p", 10.0, record_events=True)
        recorder.record(1.0, EventKind.FAILURE)
        recorder.record(2.0, EventKind.CHECKPOINT_END)
        recorder.record(3.0, EventKind.FAILURE)
        trace = recorder.finish(12.0)
        assert trace.count_events(EventKind.FAILURE) == 2
        assert [e.time for e in trace.events_of_kind(EventKind.FAILURE)] == [1.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionTrace(
                protocol="p",
                application_time=0.0,
                makespan=1.0,
                failure_count=0,
                breakdown=TimeBreakdown(),
            )
        with pytest.raises(ValueError):
            ExecutionTrace(
                protocol="p",
                application_time=1.0,
                makespan=1.0,
                failure_count=-1,
                breakdown=TimeBreakdown(),
            )


class TestTraceRecorder:
    def test_counts_failures_even_without_event_recording(self):
        recorder = TraceRecorder("p", 10.0, record_events=False)
        recorder.record(1.0, EventKind.FAILURE)
        recorder.record(2.0, EventKind.FAILURE)
        trace = recorder.finish(11.0)
        assert trace.failure_count == 2
        assert trace.events == ()

    def test_account_and_breakdown_consistency(self):
        recorder = TraceRecorder("p", 10.0)
        recorder.account("useful_work", 10.0)
        recorder.account("checkpointing", 1.5)
        recorder.account_many({"downtime": 0.5, "recovery": 1.0})
        trace = recorder.finish(13.0)
        assert trace.breakdown.total == pytest.approx(13.0)
        assert trace.breakdown.total == pytest.approx(trace.makespan)

    def test_account_rejects_negative(self):
        with pytest.raises(ValueError):
            TraceRecorder("p", 10.0).account("useful_work", -1.0)

    def test_metadata_passthrough(self):
        recorder = TraceRecorder("p", 10.0)
        trace = recorder.finish(10.0, metadata={"period": 42.0})
        assert trace.metadata["period"] == 42.0
