"""Unit tests for the ScenarioSpec schema, serialization and builder."""

from __future__ import annotations

import json

import pytest

from repro.core.registry import UnknownFailureModelError, UnknownProtocolError
from repro.failures import WeibullFailureModel
from repro.scenario import (
    Scenario,
    ScenarioSpec,
    ScenarioSpecError,
    FailureSpec,
    PlatformSpec,
    WorkloadSpec,
)
from repro.utils import MINUTE, WEEK


def minimal_dict() -> dict:
    return {
        "platform": {"mtbf": 7200.0, "checkpoint": 600.0},
        "workload": {"total_time": 86400.0},
    }


class TestFromDict:
    def test_minimal_document(self):
        spec = ScenarioSpec.from_dict(minimal_dict())
        assert spec.platform.mtbf == 7200.0
        assert spec.workload.alpha == 0.8  # default
        assert spec.failures.model == "exponential"
        assert spec.canonical_protocols == (
            "PurePeriodicCkpt",
            "BiPeriodicCkpt",
            "ABFT&PeriodicCkpt",
        )

    def test_unknown_top_level_key_names_path(self):
        data = minimal_dict()
        data["platforn"] = {}
        with pytest.raises(ScenarioSpecError, match="platforn"):
            ScenarioSpec.from_dict(data)

    def test_missing_required_field_names_path(self):
        data = minimal_dict()
        del data["platform"]["mtbf"]
        with pytest.raises(ScenarioSpecError, match=r"platform: missing required"):
            ScenarioSpec.from_dict(data)

    def test_wrong_type_names_path_and_value(self):
        data = minimal_dict()
        data["platform"]["checkpoint"] = "ten minutes"
        with pytest.raises(
            ScenarioSpecError, match=r"platform\.checkpoint: expected a number"
        ):
            ScenarioSpec.from_dict(data)

    def test_bad_alpha_range(self):
        data = minimal_dict()
        data["workload"]["alpha"] = 1.5
        with pytest.raises(ScenarioSpecError, match=r"workload\.alpha"):
            ScenarioSpec.from_dict(data)

    def test_bad_sweep_entry_reports_index(self):
        data = minimal_dict()
        data["sweep"] = {"mtbf_values": [3600.0, "x"]}
        with pytest.raises(
            ScenarioSpecError, match=r"sweep\.mtbf_values\[1\]"
        ):
            ScenarioSpec.from_dict(data)

    def test_unknown_protocol_suggests(self):
        data = minimal_dict()
        data["protocols"] = ["BiPeriodikCkpt"]
        with pytest.raises(UnknownProtocolError, match="did you mean"):
            ScenarioSpec.from_dict(data)

    def test_unknown_failure_model_suggests(self):
        data = minimal_dict()
        data["failures"] = {"model": "weibul"}
        with pytest.raises(UnknownFailureModelError, match="did you mean"):
            ScenarioSpec.from_dict(data)

    def test_bad_simulation_runs(self):
        data = minimal_dict()
        data["simulation"] = {"runs": 0}
        with pytest.raises(ScenarioSpecError, match=r"simulation\.runs"):
            ScenarioSpec.from_dict(data)


class TestRoundTrip:
    def test_dict_round_trip_minimal(self):
        spec = ScenarioSpec.from_dict(minimal_dict())
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_dict_round_trip_full(self):
        spec = (
            Scenario.paper_figure7()
            .with_failures("trace", interarrivals=[100.0, 50.0, 200.0], cycle=True)
            .with_protocols("bi", "abft")
            .with_simulation(runs=77, seed=99)
            .build()
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = Scenario.quick().with_failures("lognormal", sigma=1.2).build()
        text = spec.to_json()
        assert ScenarioSpec.from_json(text) == spec
        # The JSON form is plain data, no Python reprs.
        json.loads(text)

    def test_file_round_trip(self, tmp_path):
        spec = Scenario.quick().build()
        path = spec.save(tmp_path / "scenario.json")
        assert ScenarioSpec.load(path) == spec

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ScenarioSpecError, match="not found"):
            ScenarioSpec.load(tmp_path / "nope.json")

    def test_invalid_json_reported(self):
        with pytest.raises(ScenarioSpecError, match="invalid JSON"):
            ScenarioSpec.from_json("{not json")


class TestBuilder:
    def test_paper_figure7_matches_paper_caption(self):
        spec = Scenario.paper_figure7().build()
        assert spec.platform.checkpoint == 10 * MINUTE
        assert spec.platform.recovery == 10 * MINUTE
        assert spec.platform.downtime == 1 * MINUTE
        assert spec.workload.total_time == 1 * WEEK
        assert spec.sweep.mtbf_values[0] == 60 * MINUTE
        assert spec.sweep.mtbf_values[-1] == 240 * MINUTE
        assert len(spec.sweep.alpha_values) == 11

    def test_fluent_chain_is_immutable(self):
        base = Scenario.paper_figure7()
        derived = base.with_failures("weibull", shape=0.7)
        assert base.build().failures.model == "exponential"
        assert derived.build().failures.model == "weibull"
        assert derived.build().failures.params_dict == {"shape": 0.7}

    def test_with_protocol_singular_alias(self):
        spec = Scenario.paper_figure7().with_protocol("BiPeriodicCkpt").build()
        assert spec.protocols == ("BiPeriodicCkpt",)

    def test_build_without_platform_is_actionable(self):
        with pytest.raises(ScenarioSpecError, match="with_platform"):
            Scenario().build()

    def test_build_without_workload_is_actionable(self):
        with pytest.raises(ScenarioSpecError, match="with_workload"):
            Scenario().with_platform(mtbf=3600.0, checkpoint=60.0).build()

    def test_empty_protocols_rejected(self):
        with pytest.raises(ScenarioSpecError, match="at least one"):
            Scenario.paper_figure7().with_protocols()


class TestResolution:
    def test_parameters_and_workload(self):
        spec = Scenario.paper_figure7().build()
        params = spec.parameters()
        assert params.platform_mtbf == spec.platform.mtbf
        assert params.full_checkpoint == spec.platform.checkpoint
        workload = spec.application_workload(0.5)
        assert workload.alpha == pytest.approx(0.5)
        assert workload.total_time == pytest.approx(spec.workload.total_time)

    def test_resolve_binds_failure_model(self):
        spec = (
            Scenario.paper_figure7().with_failures("weibull", shape=0.7).build()
        )
        bound = spec.resolve("abft", mtbf=3600.0)
        assert isinstance(bound.failure_model, WeibullFailureModel)
        assert bound.failure_model.mtbf == 3600.0
        assert bound.simulator.failure_model is bound.failure_model

    def test_axes_fall_back_to_point_values(self):
        spec = ScenarioSpec(
            platform=PlatformSpec(mtbf=3600.0, checkpoint=60.0),
            workload=WorkloadSpec(total_time=7200.0, alpha=0.3),
        )
        assert spec.mtbf_axis == (3600.0,)
        assert spec.alpha_axis == (0.3,)

    def test_multi_epoch_workload(self):
        spec = ScenarioSpec(
            platform=PlatformSpec(mtbf=3600.0, checkpoint=60.0),
            workload=WorkloadSpec(total_time=6000.0, alpha=0.5, epochs=10),
        )
        workload = spec.application_workload()
        assert workload.epoch_count == 10
        assert workload.total_time == pytest.approx(6000.0)

    def test_describe_mentions_protocols_and_law(self):
        spec = Scenario.quick().with_failures("weibull", shape=0.7).build()
        text = spec.describe()
        assert "weibull" in text and "shape=0.7" in text
        assert "ABFT&PeriodicCkpt" in text


class TestModelParams:
    def test_round_trip(self):
        spec = (
            Scenario.quick()
            .with_model_params("abft", per_epoch=False)
            .build()
        )
        # Keys are canonicalized at construction.
        assert spec.model_params == (
            ("ABFT&PeriodicCkpt", (("per_epoch", False),)),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert spec.model_kwargs_for("composite") == {"per_epoch": False}
        assert spec.model_kwargs_for("PurePeriodicCkpt") == {}

    def test_from_dict_validates_shape(self):
        data = minimal_dict()
        data["model_params"] = {"ABFT&PeriodicCkpt": 3}
        with pytest.raises(ScenarioSpecError, match="model_params"):
            ScenarioSpec.from_dict(data)

    def test_resolve_applies_model_params(self):
        spec = (
            Scenario.quick()
            .with_workload(epochs=100)
            .with_model_params("abft", per_epoch=False)
            .build()
        )
        bound = spec.resolve("abft")
        assert bound.model._per_epoch is False


class TestFailureParamProbe:
    def test_typo_in_params_fails_at_load_with_path(self):
        data = minimal_dict()
        data["failures"] = {"model": "weibull", "params": {"shap": 0.7}}
        with pytest.raises(ScenarioSpecError, match=r"failures\.params"):
            ScenarioSpec.from_dict(data)

    def test_trace_without_data_fails_at_load(self):
        data = minimal_dict()
        data["failures"] = {"model": "trace"}
        with pytest.raises(ScenarioSpecError, match="interarrivals"):
            ScenarioSpec.from_dict(data)

    def test_builder_probes_too(self):
        with pytest.raises(ScenarioSpecError, match=r"failures\.params"):
            Scenario.quick().with_failures("lognormal", sigm=2.0).build()


class TestFailureSpec:
    def test_params_dict_restores_lists(self):
        spec = FailureSpec(
            model="trace", params=(("interarrivals", (1.0, 2.0)), ("cycle", True))
        )
        assert spec.params_dict == {"interarrivals": [1.0, 2.0], "cycle": True}

    def test_is_exponential_through_alias(self):
        assert FailureSpec(model="exp").is_exponential
        assert not FailureSpec(model="weibull").is_exponential


class TestSimulationBackend:
    def test_default_backend_is_event(self):
        spec = ScenarioSpec.from_dict(minimal_dict())
        assert spec.simulation.backend == "event"

    def test_backend_round_trips(self):
        data = minimal_dict()
        data["protocols"] = ["PurePeriodicCkpt"]
        data["simulation"] = {"validate": True, "runs": 5, "backend": "vectorized"}
        spec = ScenarioSpec.from_dict(data)
        assert spec.simulation.backend == "vectorized"
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["simulation"]["backend"] == "vectorized"

    def test_unknown_backend_names_path(self):
        data = minimal_dict()
        data["simulation"] = {"backend": "gpu"}
        with pytest.raises(ScenarioSpecError, match=r"simulation\.backend"):
            ScenarioSpec.from_dict(data)

    def test_vectorized_backend_accepts_phased_protocols(self):
        data = minimal_dict()
        data["protocols"] = ["BiPeriodicCkpt", "ABFT&PeriodicCkpt"]
        data["simulation"] = {"backend": "vectorized"}
        spec = ScenarioSpec.from_dict(data)
        assert spec.simulation.backend == "vectorized"

    def test_vectorized_backend_accepts_vectorized_laws(self):
        for model, params in (
            ("weibull", {"shape": 0.7}),
            ("lognormal", {"sigma": 1.0}),
        ):
            data = minimal_dict()
            data["protocols"] = ["PurePeriodicCkpt"]
            data["failures"] = {"model": model, "params": params}
            data["simulation"] = {"backend": "vectorized"}
            assert ScenarioSpec.from_dict(data).failures.model == model

    def test_vectorized_backend_accepts_trace_law(self):
        data = minimal_dict()
        data["protocols"] = ["PurePeriodicCkpt"]
        data["failures"] = {
            "model": "trace",
            "params": {"interarrivals": [100.0, 200.0, 300.0]},
        }
        data["simulation"] = {"backend": "vectorized"}
        assert ScenarioSpec.from_dict(data).failures.model == "trace"

    def test_auto_backend_accepts_anything_registered(self):
        data = minimal_dict()
        data["failures"] = {
            "model": "trace",
            "params": {"interarrivals": [100.0, 200.0, 300.0]},
        }
        data["simulation"] = {"backend": "auto"}
        assert ScenarioSpec.from_dict(data).simulation.backend == "auto"

    def test_builder_sets_backend(self):
        spec = (
            Scenario.quick()
            .with_protocols("PurePeriodicCkpt")
            .with_simulation(validate=True, runs=5, backend="vectorized")
            .build()
        )
        assert spec.simulation.backend == "vectorized"


class TestContentHash:
    """The spec's content address: stable across processes and field order."""

    PINNED_DOCUMENT = {
        "name": "pin",
        "platform": {"mtbf": 7200.0, "checkpoint": 600.0},
        "workload": {"total_time": 86400.0},
    }
    # sha256 of the canonical sorted-key JSON of the canonicalized spec.
    # This value is shared by the advisor service's answer cache and the
    # SweepCache point keys; changing serialization invalidates both, so a
    # failure here means "bump the answer schema version", not "update the
    # pin and move on".
    PINNED_HASH = "b1af2cde5d6d7a0a711b385203d14139cb1b5f607faaa975dd1c47645c154bf2"

    def test_pinned_value(self):
        spec = ScenarioSpec.from_dict(self.PINNED_DOCUMENT)
        assert spec.content_hash() == self.PINNED_HASH

    def test_stable_across_field_order_permutations(self):
        import itertools

        reference = ScenarioSpec.from_dict(self.PINNED_DOCUMENT).content_hash()
        items = list(self.PINNED_DOCUMENT.items())
        for permutation in itertools.permutations(items):
            shuffled = dict(permutation)
            shuffled["platform"] = dict(
                reversed(list(self.PINNED_DOCUMENT["platform"].items()))
            )
            assert ScenarioSpec.from_dict(shuffled).content_hash() == reference

    def test_stable_across_processes(self):
        # Guards against accidental reliance on per-process state (hash
        # randomization, dict iteration artifacts): a fresh interpreter must
        # reproduce the pin bit-for-bit.
        import json as json_module
        import subprocess
        import sys

        program = (
            "import json, sys\n"
            "from repro.scenario import ScenarioSpec\n"
            "doc = json.loads(sys.argv[1])\n"
            "print(ScenarioSpec.from_dict(doc).content_hash())\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", program, json_module.dumps(self.PINNED_DOCUMENT)],
            capture_output=True,
            text=True,
            check=True,
        )
        assert completed.stdout.strip() == self.PINNED_HASH

    def test_spelled_out_defaults_share_the_address(self):
        # Canonicalization happens at the spec layer: writing a default
        # explicitly does not change the content address.
        spelled = dict(self.PINNED_DOCUMENT)
        spelled["failures"] = {"model": "exponential"}
        spelled["workload"] = dict(self.PINNED_DOCUMENT["workload"], alpha=0.8)
        assert (
            ScenarioSpec.from_dict(spelled).content_hash() == self.PINNED_HASH
        )

    def test_value_changes_change_the_address(self):
        changed = dict(self.PINNED_DOCUMENT)
        changed["platform"] = dict(self.PINNED_DOCUMENT["platform"], mtbf=7201.0)
        assert ScenarioSpec.from_dict(changed).content_hash() != self.PINNED_HASH

    def test_matches_canonical_digest_of_to_dict(self):
        # The format-version field is stripped before digesting: it
        # describes the file layout, not the experiment, so a v1 file and
        # its re-serialization share one content address.
        from repro.campaign.cache import canonical_digest

        spec = ScenarioSpec.from_dict(self.PINNED_DOCUMENT)
        data = spec.to_dict()
        data.pop("version")
        assert spec.content_hash() == canonical_digest(data)
