"""Unit tests for :mod:`repro.utils.validation`."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    require_fraction,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(3) == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="strictly positive"):
            require_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive(-1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            require_positive(float("nan"))

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            require_positive("not-a-number")  # type: ignore[arg-type]

    def test_message_contains_name(self):
        with pytest.raises(ValueError, match="mtbf"):
            require_positive(-1.0, "mtbf")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            require_non_negative(-0.5)


class TestRequireInRange:
    def test_inclusive_bounds(self):
        assert require_in_range(0.0, 0.0, 1.0) == 0.0
        assert require_in_range(1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(ValueError):
            require_in_range(0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            require_in_range(2.0, 0.0, 1.0)


class TestFractionAndProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_valid_values(self, value):
        assert require_probability(value) == value
        assert require_fraction(value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 7])
    def test_invalid_values(self, value):
        with pytest.raises(ValueError):
            require_probability(value)
        with pytest.raises(ValueError):
            require_fraction(value)
