"""The storage axis end to end: registry, lowering, specs, maps, service.

The tentpole contract: every protocol is parameterized by *where* it
checkpoints (a ``CheckpointStorage`` stack) rather than bare scalar
``(C, R)``; storage lowers into scalars inside
:class:`~repro.core.parameters.ResilienceParameters` so everything
downstream -- engines, optimizer, regime maps, the advisor service -- keeps
working unchanged, and the default scalar spelling stays bit-identical.
"""

from __future__ import annotations

import pickle

import pytest

from repro.checkpointing import (
    BuddyStorage,
    FlatStorage,
    IncrementalCheckpointing,
    LocalStorage,
    MultiLevelStorage,
    RemoteFileSystemStorage,
    StorageStack,
)
from repro.core.parameters import CheckpointCosts, ResilienceParameters
from repro.core.registry import (
    UnknownStorageError,
    build_storage,
    registry_catalog,
    resolve_protocol,
    resolve_storage,
    storage_names,
)
from repro.utils import GB, HOUR, MINUTE, TB


# ---------------------------------------------------------------------- #
# Lowering hooks on the storage zoo
# ---------------------------------------------------------------------- #
class TestLoweredCosts:
    def test_default_hook_is_write_read(self):
        storage = RemoteFileSystemStorage(write_bandwidth=100 * GB)
        c, r = storage.lowered_costs(600 * GB, 1000)
        assert c == storage.write_time(600 * GB, 1000)
        assert r == storage.read_time(600 * GB, 1000)
        assert storage.mtbf_sensitive is False

    def test_flat_storage_is_the_scalar_identity(self):
        storage = FlatStorage(600.0, 300.0)
        assert storage.lowered_costs(0.0, 1) == (600.0, 300.0)
        assert FlatStorage(600.0).lowered_costs(5 * TB, 100) == (600.0, 600.0)

    def test_multilevel_blends_children(self):
        local = LocalStorage(node_write_bandwidth=5 * GB)
        remote = RemoteFileSystemStorage(write_bandwidth=100 * GB)
        multi = MultiLevelStorage(
            local, remote, remote_fraction=0.25, remote_read_fraction=0.25
        )
        data, nodes = 64 * TB, 1000
        c, r = multi.lowered_costs(data, nodes)
        assert c == pytest.approx(
            local.write_time(data, nodes) + 0.25 * remote.write_time(data, nodes)
        )
        assert r == pytest.approx(
            0.75 * local.read_time(data, nodes) + 0.25 * remote.read_time(data, nodes)
        )

    def test_incremental_writes_dirty_reads_full(self):
        base = RemoteFileSystemStorage(write_bandwidth=100 * GB)
        incremental = IncrementalCheckpointing(base, modified_fraction=0.2)
        data, nodes = 10 * TB, 100
        c, r = incremental.lowered_costs(data, nodes)
        assert c == pytest.approx(base.write_time(0.2 * data, nodes))
        assert r == pytest.approx(base.read_time(data, nodes))

    def test_buddy_without_fallback_is_mtbf_insensitive(self):
        buddy = BuddyStorage(link_bandwidth=10 * GB)
        assert buddy.mtbf_sensitive is False
        c, r = buddy.lowered_costs(64 * TB, 1000, platform_mtbf=3600.0)
        assert c == buddy.write_time(64 * TB, 1000)
        assert r == buddy.read_time(64 * TB, 1000)

    def test_buddy_fallback_risk_weighted_recovery(self):
        fallback = RemoteFileSystemStorage(write_bandwidth=100 * GB)
        buddy = BuddyStorage(link_bandwidth=10 * GB, fallback_storage=fallback)
        assert buddy.mtbf_sensitive is True
        data, nodes, platform_mtbf = 64 * TB, 1000, 3600.0
        write = buddy.write_time(data, nodes)
        node_mtbf = platform_mtbf * nodes
        p_loss = 1.0 - buddy.survival_probability(node_mtbf, write)
        expected_r = (1.0 - p_loss) * buddy.read_time(data, nodes) + (
            p_loss * fallback.read_time(data, nodes)
        )
        c, r = buddy.lowered_costs(data, nodes, platform_mtbf=platform_mtbf)
        assert c == write
        assert r == pytest.approx(expected_r)
        # Shakier platforms shift recovery toward the (slower) fallback.
        _, r_shaky = buddy.lowered_costs(data, nodes, platform_mtbf=360.0)
        assert r_shaky > r

    def test_stack_binds_scale(self):
        storage = RemoteFileSystemStorage(write_bandwidth=100 * GB)
        stack = StorageStack(storage, data_bytes=600 * GB, node_count=1000)
        assert stack.lowered_costs() == storage.lowered_costs(600 * GB, 1000)
        assert "remote" in stack.describe() or "B," in stack.describe()


# ---------------------------------------------------------------------- #
# Registry: the storage axis is first-class
# ---------------------------------------------------------------------- #
class TestStorageRegistry:
    def test_builtin_names_and_aliases(self):
        names = storage_names()
        assert names == (
            "flat",
            "remote-pfs",
            "node-local",
            "buddy",
            "multi-level",
            "incremental",
        )
        assert resolve_storage("scalar").name == "flat"
        assert resolve_storage("nvram").name == "node-local"
        assert resolve_storage("multilevel").name == "multi-level"

    def test_unknown_storage_suggests_and_is_keyerror(self):
        with pytest.raises(UnknownStorageError):
            resolve_storage("multi-levl")
        with pytest.raises(KeyError):
            resolve_storage("nope")

    def test_build_storage_nested_tree(self):
        storage = build_storage(
            {
                "kind": "multi-level",
                "params": {
                    "local": {
                        "kind": "nvram",
                        "params": {"node_write_bandwidth": 5 * GB},
                    },
                    "remote": {
                        "kind": "pfs",
                        "params": {"write_bandwidth": 100 * GB},
                    },
                    "remote_fraction": 0.25,
                },
            }
        )
        assert isinstance(storage, MultiLevelStorage)
        assert isinstance(storage.local, LocalStorage)
        assert isinstance(storage.remote, RemoteFileSystemStorage)

    @pytest.mark.parametrize(
        "tree, fragment",
        [
            ({"params": {}}, "storage.kind"),
            ({"kind": "flat", "extra": 1}, "unknown keys"),
            ({"kind": "nope", "params": {}}, "storage.kind"),
            ({"kind": "flat", "params": {"bogus": 1}}, "storage.params"),
            (
                {
                    "kind": "buddy",
                    "params": {
                        "link_bandwidth": 1,
                        "fallback_storage": {"kind": "nope"},
                    },
                },
                "storage.params.fallback_storage.kind",
            ),
        ],
    )
    def test_build_storage_errors_name_the_path(self, tree, fragment):
        with pytest.raises(ValueError, match="storage"):
            try:
                build_storage(tree)
            except ValueError as exc:
                assert fragment in str(exc)
                raise

    def test_catalog_reports_storages_and_per_protocol_stacks(self):
        catalog = registry_catalog()
        names = [entry["name"] for entry in catalog["storages"]]
        assert names == list(storage_names())
        by_name = {entry["name"]: entry for entry in catalog["protocols"]}
        assert by_name["NoFT"]["storage_stacks"] == []
        assert by_name["PurePeriodicCkpt"]["storage_stacks"] == names
        buddy = next(e for e in catalog["storages"] if e["name"] == "buddy")
        assert buddy["analytical"] is False
        assert "fallback_storage" in buddy["nested"]

    def test_noft_is_storage_free(self):
        assert resolve_protocol("NoFT").storage is False
        assert resolve_protocol("BiPeriodicCkpt").storage is True


# ---------------------------------------------------------------------- #
# Parameters: lowering is the single source of truth
# ---------------------------------------------------------------------- #
class TestParameterLowering:
    def test_flat_stack_equals_scalars(self):
        scalar = ResilienceParameters.from_scalars(
            platform_mtbf=2 * HOUR, checkpoint=600.0, recovery=300.0
        )
        lowered = ResilienceParameters.from_storage(
            platform_mtbf=2 * HOUR,
            storage=FlatStorage(600.0, 300.0),
        )
        assert lowered.full_checkpoint == scalar.full_checkpoint
        assert lowered.full_recovery == scalar.full_recovery
        assert lowered.costs == scalar.costs

    def test_with_mtbf_relowers_mtbf_sensitive_stacks(self):
        buddy = BuddyStorage(
            link_bandwidth=10 * GB,
            fallback_storage=RemoteFileSystemStorage(write_bandwidth=100 * GB),
        )
        params = ResilienceParameters.from_storage(
            platform_mtbf=2 * HOUR,
            storage=StorageStack(buddy, data_bytes=64 * TB, node_count=1000),
        )
        shaky = params.with_mtbf(12 * MINUTE)
        assert shaky.full_checkpoint == params.full_checkpoint
        assert shaky.full_recovery > params.full_recovery

    def test_with_costs_detaches_the_stack(self):
        params = ResilienceParameters.from_storage(
            platform_mtbf=2 * HOUR, storage=FlatStorage(600.0)
        )
        scalars = params.with_costs(CheckpointCosts(60.0, 60.0, 0.8, 60.0))
        assert scalars.storage is None
        assert scalars.full_checkpoint == 60.0
        # ... and with_mtbf no longer re-lowers anything.
        assert scalars.with_mtbf(1 * HOUR).full_checkpoint == 60.0

    def test_storage_parameters_pickle_roundtrip(self):
        params = ResilienceParameters.from_storage(
            platform_mtbf=2 * HOUR,
            storage=StorageStack(
                MultiLevelStorage(
                    LocalStorage(node_write_bandwidth=5 * GB),
                    RemoteFileSystemStorage(write_bandwidth=100 * GB),
                ),
                data_bytes=64 * TB,
                node_count=1000,
            ),
        )
        clone = pickle.loads(pickle.dumps(params))
        assert clone.costs == params.costs
        assert clone.storage is not None

    def test_storage_stack_wrapping_and_conflicts(self):
        bare = RemoteFileSystemStorage(write_bandwidth=100 * GB)
        params = ResilienceParameters.from_storage(
            platform_mtbf=2 * HOUR, storage=bare, data_bytes=600 * GB, node_count=10
        )
        assert params.storage.data_bytes == 600 * GB
        with pytest.raises(ValueError):
            ResilienceParameters.from_storage(
                platform_mtbf=2 * HOUR,
                storage=StorageStack(bare, 1.0, 1),
                data_bytes=600 * GB,
            )

    def test_needs_costs_or_storage(self):
        with pytest.raises(ValueError, match="costs or a storage stack"):
            ResilienceParameters(platform_mtbf=2 * HOUR)


# ---------------------------------------------------------------------- #
# Protocol constructors: storage kwarg + the deduplicated scalar-API note
# ---------------------------------------------------------------------- #
class TestProtocolStorage:
    def test_noft_rejects_storage(self):
        from repro.application.workload import ApplicationWorkload
        from repro.core.protocols import NoFaultToleranceSimulator

        params = ResilienceParameters.from_scalars(
            platform_mtbf=2 * HOUR, checkpoint=600.0
        )
        workload = ApplicationWorkload.single_epoch(HOUR, 0.8, library_fraction=0.8)
        with pytest.raises(ValueError, match="no storage stack"):
            NoFaultToleranceSimulator(
                params, workload, storage=StorageStack(FlatStorage(600.0))
            )

    def test_scalar_note_fires_once_and_storage_silences_it(self, capsys):
        import repro.obs as obs
        from repro.application.workload import ApplicationWorkload
        from repro.core.protocols import PurePeriodicCkptSimulator

        obs.reset_log_notes()
        params = ResilienceParameters.from_scalars(
            platform_mtbf=2 * HOUR, checkpoint=600.0
        )
        workload = ApplicationWorkload.single_epoch(HOUR, 0.8, library_fraction=0.8)
        PurePeriodicCkptSimulator(params, workload)
        PurePeriodicCkptSimulator(params, workload)
        err = capsys.readouterr().err
        assert err.count("scalar-cost-api") == 1
        obs.reset_log_notes()
        PurePeriodicCkptSimulator(
            params, workload, storage=StorageStack(FlatStorage(600.0))
        )
        assert "scalar-cost-api" not in capsys.readouterr().err
        obs.reset_log_notes()


# ---------------------------------------------------------------------- #
# Regime maps: the storage axis replaces the checkpoint axis
# ---------------------------------------------------------------------- #
class TestRegimeStorageAxis:
    STACKS = {
        "pfs": {"kind": "remote-pfs", "params": {"write_bandwidth": 100 * GB}},
        "buddy": {
            "kind": "buddy",
            "params": {
                "link_bandwidth": 10 * GB,
                "fallback_storage": {
                    "kind": "remote-pfs",
                    "params": {"write_bandwidth": 100 * GB},
                },
            },
        },
    }

    def spec(self, **changes):
        from repro.optimize.regime import RegimeMapSpec
        from repro.utils.units import YEAR

        base = dict(
            node_counts=(100, 1000),
            node_mtbf_values=(10 * YEAR,),
            storage_stacks=self.STACKS,
            memory_per_node=64 * GB,
            application_time=86400.0,
        )
        base.update(changes)
        return RegimeMapSpec(**base)

    def test_coordinates_iterate_labels(self):
        spec = self.spec()
        assert spec.storage_mode and spec.storage_labels == ("pfs", "buddy")
        thirds = {coord[2] for coord in spec.coordinates()}
        assert thirds == {"pfs", "buddy"}
        assert spec.cell_count == 4

    def test_checkpoint_axis_is_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            self.spec(checkpoint_costs=(300.0,))

    def test_bad_tree_fails_at_spec_construction(self):
        with pytest.raises(ValueError, match=r"storage_stacks\[bad\]"):
            self.spec(storage_stacks={"bad": {"kind": "nope"}})

    def test_parameters_lower_per_cell_scale(self):
        spec = self.spec()
        from repro.utils.units import YEAR

        small = spec.parameters_at(100, 10 * YEAR, "pfs", 1.03)
        large = spec.parameters_at(1000, 10 * YEAR, "pfs", 1.03)
        # Weak scaling: 10x the nodes writes 10x the bytes to the same PFS.
        assert large.full_checkpoint == pytest.approx(10 * small.full_checkpoint)

    def test_cache_keys_differ_per_label_and_tree(self):
        spec = self.spec()
        from repro.utils.units import YEAR

        key_a = spec.cell_key(100, 10 * YEAR, "pfs", 1.03)
        key_b = spec.cell_key(100, 10 * YEAR, "buddy", 1.03)
        assert key_a != key_b
        assert "checkpoint" not in key_a
        assert key_a["storage"] == "pfs"
        assert key_a["storage_tree"]["kind"] == "remote-pfs"

    def test_map_cells_carry_labels_and_roundtrip(self, tmp_path):
        import json

        from repro.optimize.regime import RegimeMap, compute_regime_map

        regime_map = compute_regime_map(self.spec())
        labels = {cell.storage for cell in regime_map.cells}
        assert labels == {"pfs", "buddy"}
        for cell in regime_map.cells:
            assert cell.checkpoint > 0  # the effective lowered cost
        clone = RegimeMap.from_dict(json.loads(regime_map.to_json()))
        assert clone.to_json() == regime_map.to_json()
        assert "storage = pfs" in regime_map.to_ascii()

    def test_legacy_spec_dict_has_no_storage_keys(self):
        from repro.optimize.regime import RegimeMapSpec
        from repro.utils.units import YEAR

        legacy = RegimeMapSpec(node_counts=(10,), node_mtbf_values=(5 * YEAR,))
        data = legacy.to_dict()
        assert "storage_stacks" not in data and "memory_per_node" not in data
        assert RegimeMapSpec.from_dict(data) == legacy


# ---------------------------------------------------------------------- #
# Service tiers: storage always falls through to the exact optimizer
# ---------------------------------------------------------------------- #
class TestServiceStorageFallthrough:
    def test_storage_scenario_misses_the_surface(self):
        from repro.optimize.regime import RegimeMapSpec, compute_regime_map
        from repro.scenario.spec import ScenarioSpec
        from repro.service.tiers import RegimeSurface, SurfaceMismatch

        surface = RegimeSurface(
            compute_regime_map(
                RegimeMapSpec(
                    node_counts=(1000,),
                    node_mtbf_values=(86400.0 * 1000,),
                    application_time=86400.0,
                )
            )
        )
        spec = ScenarioSpec.from_dict(
            {
                "name": "storage",
                "platform": {"mtbf": 86400.0},
                "storage": {
                    "kind": "remote-pfs",
                    "data_bytes": 64 * TB,
                    "node_count": 1000,
                    "params": {"write_bandwidth": 100 * GB},
                },
                "workload": {"total_time": 86400.0, "alpha": 0.8},
                "protocols": ["PurePeriodicCkpt"],
            }
        )
        with pytest.raises(SurfaceMismatch, match="storage"):
            surface.check_compatible(spec, spec.protocols)

    def test_storage_axis_map_is_not_interpolable(self):
        from repro.optimize.regime import RegimeMapSpec, compute_regime_map
        from repro.scenario.spec import ScenarioSpec
        from repro.service.tiers import RegimeSurface, SurfaceMismatch

        surface = RegimeSurface(
            compute_regime_map(
                RegimeMapSpec(
                    node_counts=(1000,),
                    node_mtbf_values=(86400.0 * 1000,),
                    storage_stacks={
                        "pfs": {
                            "kind": "remote-pfs",
                            "params": {"write_bandwidth": 100 * GB},
                        }
                    },
                    memory_per_node=64 * GB,
                    application_time=86400.0,
                )
            )
        )
        spec = ScenarioSpec.from_dict(
            {
                "name": "plain",
                "platform": {"mtbf": 86400.0, "checkpoint": 600.0},
                "workload": {"total_time": 86400.0, "alpha": 0.8},
                "protocols": ["PurePeriodicCkpt"],
            }
        )
        with pytest.raises(SurfaceMismatch, match="storage"):
            surface.check_compatible(spec, spec.protocols)

    def test_tier3_lowers_storage_exactly(self):
        from repro.scenario.spec import ScenarioSpec
        from repro.service.tiers import analytical_answer

        storage_doc = {
            "name": "storage",
            "platform": {"mtbf": 7200.0},
            "storage": {"kind": "flat", "params": {"checkpoint": 600.0}},
            "workload": {"total_time": 86400.0, "alpha": 0.8},
            "protocols": ["PurePeriodicCkpt", "BiPeriodicCkpt"],
        }
        scalar_doc = {
            "name": "scalar",
            "platform": {"mtbf": 7200.0, "checkpoint": 600.0},
            "workload": {"total_time": 86400.0, "alpha": 0.8},
            "protocols": ["PurePeriodicCkpt", "BiPeriodicCkpt"],
        }
        via_storage = analytical_answer(
            ScenarioSpec.from_dict(storage_doc), ("PurePeriodicCkpt",)
        )
        via_scalars = analytical_answer(
            ScenarioSpec.from_dict(scalar_doc), ("PurePeriodicCkpt",)
        )
        assert (
            via_storage["results"]["PurePeriodicCkpt"]["waste"]
            == via_scalars["results"]["PurePeriodicCkpt"]["waste"]
        )
