"""Unit tests for the waste helpers."""

from __future__ import annotations

import math

import pytest

from repro.core.waste import (
    combine_wastes,
    slowdown_to_waste,
    waste_from_times,
    waste_to_slowdown,
)


class TestWasteFromTimes:
    def test_equation_12(self):
        assert waste_from_times(100.0, 125.0) == pytest.approx(0.2)

    def test_zero_waste(self):
        assert waste_from_times(100.0, 100.0) == 0.0

    def test_infinite_final_time(self):
        assert waste_from_times(100.0, math.inf) == 1.0

    def test_final_below_application_rejected(self):
        with pytest.raises(ValueError):
            waste_from_times(100.0, 99.0)


class TestConversions:
    def test_roundtrip(self):
        assert slowdown_to_waste(waste_to_slowdown(0.3)) == pytest.approx(0.3)

    def test_waste_one_is_infinite_slowdown(self):
        assert math.isinf(waste_to_slowdown(1.0))
        assert slowdown_to_waste(math.inf) == 1.0

    def test_invalid_slowdown(self):
        with pytest.raises(ValueError):
            slowdown_to_waste(0.5)


class TestCombineWastes:
    def test_combination_is_time_weighted(self):
        # Phase 1: waste 0.5 over T0=100; phase 2: waste 0 over T0=100.
        combined = combine_wastes([(100.0, 200.0), (100.0, 100.0)])
        assert combined == pytest.approx(1.0 - 200.0 / 300.0)

    def test_single_part(self):
        assert combine_wastes([(10.0, 20.0)]) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_wastes([])
