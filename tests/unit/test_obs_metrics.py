"""Unit tests for the repro.obs metrics primitives.

The registry's two external contracts are exactness (counters are plain
sums, histograms bucket deterministically) and deterministic rendering
(Prometheus text and JSON dumps sort the same way every time), so the
assertions here compare rendered strings literally.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import catalog
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "help", ("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3.5
        assert counter.value(kind="b") == 1.0
        assert counter.value(kind="missing") == 0.0
        assert counter.values() == {("a",): 3.5, ("b",): 1.0}

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("t_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_label_set_must_match_exactly(self):
        counter = MetricsRegistry().counter("t_total", "", ("a", "b"))
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(a="x")
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(a="x", b="y", c="z")

    def test_unlabeled_family_renders_at_zero(self):
        registry = MetricsRegistry()
        registry.counter("idle_total", "never touched")
        text = registry.render_prometheus()
        assert "# HELP idle_total never touched" in text
        assert "# TYPE idle_total counter" in text
        assert "\nidle_total 0\n" in text

    def test_labeled_series_render_sorted_and_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "h", ("name",))
        counter.inc(name="zeta")
        counter.inc(name="alpha")
        counter.inc(name='we"ird\nvalue')
        text = registry.render_prometheus()
        lines = [l for l in text.splitlines() if l.startswith("t_total{")]
        assert lines == [
            't_total{name="alpha"} 1',
            't_total{name="we\\"ird\\nvalue"} 1',
            't_total{name="zeta"} 1',
        ]


class TestGauge:
    def test_set_inc_value(self):
        gauge = MetricsRegistry().gauge("g", "", ("x",))
        gauge.set(5, x="a")
        gauge.inc(2, x="a")
        gauge.inc(-4, x="a")
        assert gauge.value(x="a") == 3.0

    def test_render_integral_without_decimal(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(7.0)
        assert "\ng 7\n" in registry.render_prometheus()
        gauge.set(7.25)
        assert "\ng 7.25\n" in registry.render_prometheus()


class TestHistogram:
    def test_bucket_placement_is_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "", (), buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        text = registry.render_prometheus()
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1"} 3' in text
        assert 'h_bucket{le="10"} 4' in text
        assert 'h_bucket{le="+Inf"} 5' in text
        assert "h_count 5" in text
        assert hist.count_value() == 5
        assert hist.sum_value() == pytest.approx(56.05)

    def test_boundary_lands_in_lower_bucket(self):
        hist = MetricsRegistry().histogram("h", "", (), buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist._cells[()].bucket_counts == [1, 0]

    def test_default_buckets_are_the_shared_latency_bounds(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.buckets == LATENCY_BUCKETS
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.5))


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "h", ("x",))
        second = registry.counter("c_total", "h", ("x",))
        assert first is second

    def test_conflicting_registration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h", ("x",))
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("c_total", "h", ("x",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("c_total", "h", ("y",))

    def test_reset_zeroes_series_but_keeps_families(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "h", ("x",))
        counter.inc(x="a")
        registry.reset()
        assert registry.get("c_total") is counter
        assert counter.values() == {}
        assert "# TYPE c_total counter" in registry.render_prometheus()

    def test_merged_render_includes_both_registries(self):
        ours = MetricsRegistry()
        theirs = MetricsRegistry()
        ours.counter("a_total").inc()
        theirs.counter("b_total").inc()
        text = ours.render_prometheus(extra=(theirs,))
        assert "a_total 1" in text and "b_total 1" in text

    def test_merged_render_rejects_duplicate_family(self):
        ours = MetricsRegistry()
        theirs = MetricsRegistry()
        ours.counter("dup_total")
        theirs.counter("dup_total")
        with pytest.raises(ValueError, match="two registries"):
            ours.render_prometheus(extra=(theirs,))

    def test_dump_json_is_deterministic(self):
        def build() -> str:
            registry = MetricsRegistry()
            counter = registry.counter("c_total", "h", ("x",))
            counter.inc(x="b")
            counter.inc(x="a")
            registry.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.5)
            return registry.dump_json()

        assert build() == build()
        payload = json.loads(build())
        series = payload["families"]["c_total"]["series"]
        assert [s["labels"] for s in series] == [{"x": "a"}, {"x": "b"}]


class TestGlobalRegistryAndCatalog:
    def test_global_registry_is_process_wide(self):
        assert global_registry() is global_registry()

    def test_catalog_family_resolves_spec(self):
        registry = MetricsRegistry()
        family = catalog.family("repro_service_requests_total", registry)
        assert isinstance(family, Counter)
        assert family.labelnames == ("endpoint",)
        gauge = catalog.family("repro_service_uptime_seconds", registry)
        assert isinstance(gauge, Gauge)
        hist = catalog.family("repro_service_request_seconds", registry)
        assert isinstance(hist, Histogram)

    def test_preregister_exposes_full_scope_schema(self):
        registry = MetricsRegistry()
        catalog.preregister(registry, (catalog.SCOPE_SERVICE,))
        assert set(registry.family_names()) == set(
            catalog.family_names(catalog.SCOPE_SERVICE)
        )

    def test_catalog_scopes_are_disjoint_and_cover_everything(self):
        global_names = set(catalog.family_names(catalog.SCOPE_GLOBAL))
        service_names = set(catalog.family_names(catalog.SCOPE_SERVICE))
        assert not global_names & service_names
        assert global_names | service_names == set(catalog.family_names())

    def test_reset_global_registry(self):
        counter = global_registry().counter("test_only_total")
        counter.inc()
        reset_global_registry()
        assert counter.value() == 0.0
