"""Integration: a SweepRunner job killed mid-grid resumes without recompute.

Simulates the crash by running a job, destroying the runner (keeping only
the cache directory, as a killed process would), then completing the sweep
with a fresh runner.  Resume must recompute zero cached points and match an
uninterrupted run exactly.
"""

from __future__ import annotations

import pytest

from repro.campaign import SweepCache, SweepJob, SweepRunner
from repro.core.parameters import ResilienceParameters
from repro.utils import HOUR, MINUTE


@pytest.fixture()
def job() -> SweepJob:
    parameters = ResilienceParameters.from_scalars(
        platform_mtbf=120 * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=60.0,
        library_fraction=0.8,
    )
    return SweepJob(
        parameters=parameters,
        application_time=24 * HOUR,
        mtbf_values=(60 * MINUTE, 120 * MINUTE),
        alpha_values=(0.25, 0.75),
        simulate=True,
        simulation_runs=5,
        seed=99,
    )


class TestResume:
    def test_full_resume_recomputes_nothing(self, tmp_path, job):
        cache_dir = tmp_path / "cache"
        runner = SweepRunner(cache_dir=cache_dir)
        first = runner.run(job)
        assert first.computed_points == 4
        assert first.cached_points == 0
        assert len(SweepCache(cache_dir)) == 4

        # "Kill" the runner: only the cache directory survives.
        del runner
        resumed = SweepRunner(cache_dir=cache_dir).run(job)
        assert resumed.computed_points == 0
        assert resumed.cached_points == 4

        fresh = SweepRunner().run(job)
        assert resumed.points == fresh.points

    def test_partial_resume_recomputes_only_missing_points(self, tmp_path, job):
        cache_dir = tmp_path / "cache"
        fresh = SweepRunner(cache_dir=cache_dir).run(job)

        # Simulate a job killed halfway: drop two of the four point files.
        cache = SweepCache(cache_dir)
        for path in list(cache.entries())[:2]:
            path.unlink()
        assert len(cache) == 2

        resumed = SweepRunner(cache_dir=cache_dir).run(job)
        assert resumed.computed_points == 2
        assert resumed.cached_points == 2
        assert resumed.points == fresh.points

    def test_resume_false_recomputes_everything(self, tmp_path, job):
        cache_dir = tmp_path / "cache"
        SweepRunner(cache_dir=cache_dir).run(job)
        rerun = SweepRunner(cache_dir=cache_dir, resume=False).run(job)
        assert rerun.computed_points == 4
        assert rerun.cached_points == 0

    def test_different_seed_does_not_hit_cache(self, tmp_path, job):
        from dataclasses import replace

        cache_dir = tmp_path / "cache"
        SweepRunner(cache_dir=cache_dir).run(job)
        other = replace(job, seed=100)
        result = SweepRunner(cache_dir=cache_dir).run(other)
        assert result.computed_points == 4
        assert result.cached_points == 0

    def test_parallel_and_serial_runs_share_cache_entries(self, tmp_path, job):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = SweepRunner(cache_dir=serial_dir).run(job)
        parallel = SweepRunner(
            cache_dir=parallel_dir, workers=2, backend="thread"
        ).run(job)
        # Determinism makes the cache contents interchangeable: resuming the
        # serial cache with a parallel runner reuses every point, and the
        # values agree exactly.
        assert serial.points == parallel.points
        resumed = SweepRunner(
            cache_dir=serial_dir, workers=2, backend="thread"
        ).run(job)
        assert resumed.computed_points == 0
        assert resumed.points == serial.points
