"""Integration: the qualitative claims of the evaluation section hold.

Each test reproduces one sentence-level claim of Section V of the paper, so a
regression in any model or protocol implementation that would change the
paper's conclusions is caught here.
"""

from __future__ import annotations

import pytest

from repro import ApplicationWorkload
from repro.application.scaling import ScalingMode
from repro.core import ResilienceParameters
from repro.core.analytical import (
    AbftPeriodicCkptModel,
    PurePeriodicCkptModel,
)
from repro.experiments import (
    paper_figure7_config,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
)
from repro.utils import MINUTE, WEEK


@pytest.fixture(scope="module")
def figure7():
    return run_figure7(paper_figure7_config())


class TestFigure7Claims:
    def test_pure_periodic_waste_depends_only_on_mtbf(self, figure7):
        """'PurePeriodicCkpt ... presents a waste that is only a function of
        the MTBF.'"""
        grid = figure7.waste_grid("PurePeriodicCkpt")
        config = figure7.config
        for mtbf in config.mtbf_values:
            values = [grid[(mtbf, alpha)] for alpha in config.alpha_values]
            assert max(values) - min(values) < 1e-12

    def test_waste_decreases_when_mtbf_increases(self, figure7):
        """'when the MTBF increases, the waste decreases.'"""
        grid = figure7.waste_grid("PurePeriodicCkpt")
        config = figure7.config
        series = [grid[(mtbf, 0.5)] for mtbf in config.mtbf_values]
        assert all(b < a for a, b in zip(series, series[1:]))

    def test_bi_periodic_minimal_when_alpha_tends_to_one(self, figure7):
        """'the waste [of BiPeriodicCkpt] becomes minimal when alpha tends
        toward 1.'"""
        grid = figure7.waste_grid("BiPeriodicCkpt")
        config = figure7.config
        for mtbf in config.mtbf_values:
            series = [grid[(mtbf, alpha)] for alpha in config.alpha_values]
            assert min(series) == series[-1]

    def test_composite_benefit_visible_at_fifty_percent(self, figure7):
        """'When 50% of the time is spent in the LIBRARY routine, the
        benefit, compared to PurePeriodicCkpt, but also compared to
        BiPeriodicCkpt, is already visible.'"""
        config = figure7.config
        alpha = 0.5
        for mtbf in config.mtbf_values:
            composite = figure7.waste_grid("ABFT&PeriodicCkpt")[(mtbf, alpha)]
            pure = figure7.waste_grid("PurePeriodicCkpt")[(mtbf, alpha)]
            bi = figure7.waste_grid("BiPeriodicCkpt")[(mtbf, alpha)]
            assert composite < bi < pure

    def test_composite_overhead_tends_to_abft_slowdown_at_alpha_one(self, figure7):
        """'When considering the extreme case of 100% ... the overhead tends
        to reach the overhead induced by the slowdown factor of ABFT
        (phi = 1.03, hence 3% overhead).'"""
        config = figure7.config
        largest_mtbf = config.mtbf_values[-1]
        waste = figure7.waste_grid("ABFT&PeriodicCkpt")[(largest_mtbf, 1.0)]
        assert 0.03 <= waste <= 0.06

    def test_composite_equals_pure_when_alpha_zero(self, figure7):
        """'When alpha tends toward 0 ... the protocol behaves as
        PurePeriodicCkpt, and no benefit is shown.'"""
        config = figure7.config
        for mtbf in config.mtbf_values:
            composite = figure7.waste_grid("ABFT&PeriodicCkpt")[(mtbf, 0.0)]
            pure = figure7.waste_grid("PurePeriodicCkpt")[(mtbf, 0.0)]
            assert composite == pytest.approx(pure, abs=5e-3)


class TestWeakScalingClaims:
    def test_composite_scales_better_beyond_crossover(self):
        """'Once the number of nodes reaches [the crossover],
        ABFT&PeriodicCkpt starts to scale better than both periodic
        checkpointing approaches' (Figure 8)."""
        result = run_figure8()
        large = [row for row in result.rows if row.node_count >= 100_000]
        for row in large:
            assert row.waste["ABFT&PeriodicCkpt"] <= row.waste["PurePeriodicCkpt"]
            assert row.waste["ABFT&PeriodicCkpt"] <= row.waste["BiPeriodicCkpt"]

    def test_abft_overhead_dominates_at_small_scale(self):
        """'Up to approximately [the crossover], the fault-free overhead of
        ABFT negatively impacts the waste of the composite approach.'"""
        result = run_figure8()
        first = result.rows[0]  # 1k nodes
        assert first.waste["ABFT&PeriodicCkpt"] > first.waste["PurePeriodicCkpt"]

    def test_bi_periodic_slightly_better_than_pure(self):
        """'the benefit [of incremental checkpointing] shows up by a small
        linear reduction of the waste for BiPeriodicCkpt.'"""
        for result in (run_figure8(), run_figure9(), run_figure10()):
            for row in result.rows:
                assert row.waste["BiPeriodicCkpt"] <= row.waste["PurePeriodicCkpt"] + 1e-12

    def test_figure9_composite_benefit_grows_with_alpha(self):
        """'The efficiency on ABFT&PeriodicCkpt, however, is more
        significant [as alpha grows with the machine]' (Figure 9)."""
        result = run_figure9(mtbf_scaling=ScalingMode.CONSTANT)
        gaps = [
            row.waste["PurePeriodicCkpt"] - row.waste["ABFT&PeriodicCkpt"]
            for row in result.rows
        ]
        assert all(b > a for a, b in zip(gaps, gaps[1:]))

    def test_figure10_composite_wins_despite_scalable_checkpointing(self):
        """'PurePeriodicCkpt and BiPeriodicCkpt are less efficient than
        ABFT&PeriodicCkpt at 1 million nodes, despite the perfectly scalable
        checkpointing hypothesis' (Figure 10)."""
        for mtbf_scaling in (ScalingMode.INVERSE, ScalingMode.CONSTANT):
            result = run_figure10(mtbf_scaling=mtbf_scaling)
            last = result.rows[-1]
            assert last.waste["ABFT&PeriodicCkpt"] < last.waste["PurePeriodicCkpt"]
            assert last.waste["ABFT&PeriodicCkpt"] < last.waste["BiPeriodicCkpt"]

    def test_composite_waste_roughly_constant_with_scalable_checkpoints(self):
        """'the ABFT technique ... appears to present a waste that is almost
        constant when the number of nodes increases' (Figure 10, constant-
        MTBF calibration)."""
        result = run_figure10(mtbf_scaling=ScalingMode.CONSTANT)
        wastes = [row.waste["ABFT&PeriodicCkpt"] for row in result.rows]
        assert max(wastes) - min(wastes) < 0.05


class TestCheckpointCostReductionClaim:
    def test_six_second_checkpoints_make_periodic_competitive(self):
        """'To reach comparable performance, we must reduce checkpointing
        overhead by a factor of 10 and use C = R = 6 s.'"""
        workload = ApplicationWorkload.iterative(1000, 8.2 * MINUTE, 0.9756)
        mtbf = 14.4 * MINUTE

        def waste_with_checkpoint(checkpoint_seconds: float) -> float:
            params = ResilienceParameters.from_scalars(
                platform_mtbf=mtbf,
                checkpoint=checkpoint_seconds,
                recovery=checkpoint_seconds,
                downtime=1 * MINUTE,
                library_fraction=0.8,
            )
            return PurePeriodicCkptModel(params).waste(workload)

        composite_params = ResilienceParameters.from_scalars(
            platform_mtbf=mtbf,
            checkpoint=60.0,
            recovery=60.0,
            downtime=1 * MINUTE,
            library_fraction=0.8,
        )
        composite = AbftPeriodicCkptModel(composite_params, per_epoch=False).waste(
            workload
        )
        gap_at_60s = waste_with_checkpoint(60.0) - composite
        gap_at_6s = waste_with_checkpoint(6.0) - composite
        assert gap_at_60s > 0
        # With 6-second checkpoints periodic checkpointing closes most of the
        # gap to the composite approach (more than three quarters of it).
        assert gap_at_6s < 0.25 * gap_at_60s


class TestQuickComparisonHelper:
    def test_quick_waste_comparison_ordering(self):
        from repro import quick_waste_comparison

        table = quick_waste_comparison(
            application_time=1 * WEEK,
            alpha=0.8,
            mtbf=120 * MINUTE,
            checkpoint=10 * MINUTE,
            downtime=1 * MINUTE,
        )
        assert (
            table["ABFT&PeriodicCkpt"]
            < table["BiPeriodicCkpt"]
            < table["PurePeriodicCkpt"]
        )
