"""Integration: end-to-end flows (storage -> parameters -> model -> simulation,
CLI round trips, example-style pipelines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AbftPeriodicCkptModel,
    AbftPeriodicCkptSimulator,
    ApplicationWorkload,
    DatasetPartition,
    Platform,
    PurePeriodicCkptModel,
    ResilienceParameters,
    run_monte_carlo,
)
from repro.abft import AbftLU, ProcessGrid, measure_overhead
from repro.abft.lu import random_diagonally_dominant
from repro.checkpointing import (
    BuddyStorage,
    CheckpointCostModel,
    RemoteFileSystemStorage,
)
from repro.cli import main
from repro.utils import DAY, GB, HOUR, MINUTE


class TestStorageToWasteFlow:
    """Derive (C, R) from a storage substrate, then compare protocols."""

    def _workload(self) -> ApplicationWorkload:
        return ApplicationWorkload.single_epoch(48 * HOUR, 0.8, library_fraction=0.8)

    def _parameters(self, storage) -> ResilienceParameters:
        platform = Platform.from_platform_mtbf(
            node_count=100_000,
            platform_mtbf_seconds=2 * HOUR,
            memory_per_node=32 * GB,
        )
        dataset = DatasetPartition(
            total_memory=platform.total_memory, library_fraction=0.8
        )
        cost_model = CheckpointCostModel(storage, downtime=60.0)
        return ResilienceParameters.from_platform(
            platform, cost_model, dataset, abft_overhead=1.03, abft_reconstruction=2.0
        )

    def test_remote_fs_vs_buddy_checkpointing(self):
        workload = self._workload()
        remote = self._parameters(RemoteFileSystemStorage(write_bandwidth=1_000 * GB))
        buddy = self._parameters(BuddyStorage(link_bandwidth=10 * GB))
        # The remote file system yields C = 3.2e6 GB / 1000 GB/s = 3200 s;
        # buddy checkpointing only moves the per-node 32 GB over a 10 GB/s
        # link: C = 3.2 s.  Periodic checkpointing should benefit hugely.
        assert remote.full_checkpoint > 100 * buddy.full_checkpoint
        pure_remote = PurePeriodicCkptModel(remote).waste(workload)
        pure_buddy = PurePeriodicCkptModel(buddy).waste(workload)
        assert pure_buddy < pure_remote
        # The composite keeps its advantage under the expensive storage.
        composite_remote = AbftPeriodicCkptModel(remote).waste(workload)
        assert composite_remote < pure_remote

    def test_simulation_agrees_with_model_for_derived_costs(self):
        workload = self._workload()
        parameters = self._parameters(
            RemoteFileSystemStorage(write_bandwidth=10_000 * GB)
        )
        model_waste = AbftPeriodicCkptModel(parameters).waste(workload)
        simulator = AbftPeriodicCkptSimulator(parameters, workload)
        campaign = run_monte_carlo(simulator.simulate_once, runs=60, seed=17)
        assert campaign.mean_waste == pytest.approx(model_waste, abs=0.05)


class TestAbftParametersFeedTheModel:
    def test_measured_overhead_can_parameterise_the_model(self):
        measurement = measure_overhead("lu", n=48, block_size=8, trials=1)
        parameters = ResilienceParameters.from_scalars(
            platform_mtbf=1 * DAY,
            checkpoint=60.0,
            abft_overhead=max(1.0, measurement.phi),
            abft_reconstruction=max(measurement.reconstruction_time, 1e-3),
        )
        workload = ApplicationWorkload.single_epoch(12 * HOUR, 0.9)
        prediction = AbftPeriodicCkptModel(parameters).evaluate(workload)
        assert prediction.feasible
        assert 0.0 <= prediction.waste < 1.0

    def test_abft_recovery_cost_independent_of_progress(self, rng):
        """The reconstruction repairs lost blocks, not recomputed work: its
        cost must not grow with the step at which the failure strikes --
        the property that justifies a constant Recons_ABFT in the model."""
        matrix = random_diagonally_dominant(48, rng)
        times = []
        for step in (1, 3, 5):
            result = AbftLU(matrix, block_size=8, grid=ProcessGrid(2, 2)).run(
                fail_at_step=step, fail_process=(0, 0)
            )
            assert result.residual < 1e-8
            times.append(result.reconstruction_time)
        # All reconstructions are sub-second and of the same order of
        # magnitude (no growth with progress).
        assert max(times) < 1.0
        assert max(times) < 50 * min(times) + 1e-3


class TestCliRoundTrip:
    def test_figure9_cli_matches_api(self, tmp_path, capsys):
        from repro.experiments import run_figure9

        csv_path = tmp_path / "figure9.csv"
        exit_code = main(["figure9", "--csv", str(csv_path)])
        assert exit_code == 0
        api_result = run_figure9()
        content = csv_path.read_text()
        # The CSV contains one line per node count plus a header.
        assert len(content.strip().splitlines()) == len(api_result.rows) + 1

    def test_quickstart_style_pipeline_runs(self):
        parameters = ResilienceParameters.from_scalars(
            platform_mtbf=2 * HOUR,
            checkpoint=10 * MINUTE,
            recovery=10 * MINUTE,
            downtime=1 * MINUTE,
        )
        workload = ApplicationWorkload.single_epoch(24 * HOUR, 0.8)
        campaign = run_monte_carlo(
            AbftPeriodicCkptSimulator(parameters, workload).simulate_once,
            runs=30,
            seed=1,
        )
        assert 0.0 < campaign.mean_waste < 1.0
        assert campaign.waste.ci_low <= campaign.mean_waste <= campaign.waste.ci_high


class TestNumericalRobustness:
    def test_many_epochs_workload(self):
        parameters = ResilienceParameters.from_scalars(
            platform_mtbf=6 * HOUR, checkpoint=30.0, recovery=30.0, downtime=10.0
        )
        workload = ApplicationWorkload.iterative(500, 4 * MINUTE, 0.8)
        simulator = AbftPeriodicCkptSimulator(parameters, workload)
        trace = simulator.simulate(rng=np.random.default_rng(5))
        assert trace.breakdown.total == pytest.approx(trace.makespan, rel=1e-8)
        assert trace.breakdown.useful_work == pytest.approx(
            workload.total_time, rel=1e-8
        )
