"""Integration: the analytical model and the simulator must agree.

This is the reproduction of the validation claim of Section V-A / Figure 7
(right column): over the explored parameter range the model and the
discrete-event simulation agree closely (the paper reports differences below
12 % of waste at the smallest MTBF and below 5 % elsewhere).
"""

from __future__ import annotations

import pytest

from repro import ApplicationWorkload
from repro.core import ResilienceParameters
from repro.experiments.validation import PROTOCOL_PAIRS, validate_configuration
from repro.utils import MINUTE, WEEK

RUNS = 100


def _parameters(mtbf_minutes: float) -> ResilienceParameters:
    return ResilienceParameters.from_scalars(
        platform_mtbf=mtbf_minutes * MINUTE,
        checkpoint=10 * MINUTE,
        recovery=10 * MINUTE,
        downtime=1 * MINUTE,
        library_fraction=0.8,
        abft_overhead=1.03,
        abft_reconstruction=2.0,
    )


@pytest.mark.parametrize("protocol", sorted(PROTOCOL_PAIRS))
@pytest.mark.parametrize("mtbf_minutes", [60, 120, 240])
@pytest.mark.parametrize("alpha", [0.2, 0.8])
def test_model_matches_simulation_within_tolerance(protocol, mtbf_minutes, alpha):
    parameters = _parameters(mtbf_minutes)
    workload = ApplicationWorkload.single_epoch(1 * WEEK, alpha, library_fraction=0.8)
    point = validate_configuration(
        protocol, parameters, workload, runs=RUNS, seed=mtbf_minutes
    )
    # The paper reports |difference| <= 0.12 at the smallest MTBF and < 0.05
    # elsewhere; our simulator stays within the same envelope.
    tolerance = 0.12 if mtbf_minutes <= 60 else 0.06
    assert abs(point.difference) <= tolerance, (
        f"{protocol} at mtbf={mtbf_minutes}min alpha={alpha}: "
        f"model={point.model_waste:.4f} sim={point.simulated_waste:.4f}"
    )


@pytest.mark.parametrize("mtbf_minutes", [60, 120, 240])
def test_simulation_preserves_protocol_ordering(mtbf_minutes):
    """At alpha = 0.8 the simulated wastes rank composite < bi < pure."""
    parameters = _parameters(mtbf_minutes)
    workload = ApplicationWorkload.single_epoch(1 * WEEK, 0.8, library_fraction=0.8)
    simulated = {
        protocol: validate_configuration(
            protocol, parameters, workload, runs=RUNS, seed=7
        ).simulated_waste
        for protocol in PROTOCOL_PAIRS
    }
    assert (
        simulated["ABFT&PeriodicCkpt"]
        < simulated["BiPeriodicCkpt"]
        < simulated["PurePeriodicCkpt"]
    )


def test_simulated_failure_count_matches_expectation():
    """E[#failures] ~ T_final / mu in both model and simulation."""
    parameters = _parameters(120)
    workload = ApplicationWorkload.single_epoch(1 * WEEK, 0.8, library_fraction=0.8)
    point = validate_configuration(
        "ABFT&PeriodicCkpt", parameters, workload, runs=RUNS, seed=3
    )
    expected = point.simulation.mean_makespan / parameters.platform_mtbf
    assert point.simulation.mean_failures == pytest.approx(expected, rel=0.1)
